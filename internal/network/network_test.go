package network

import (
	"testing"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

func TestMetricsFibonacci(t *testing.T) {
	// Γ_d: max degree d, diameter d (Proposition 6.1), connected, bipartite.
	for d := 2; d <= 9; d++ {
		n := NewFibonacci(d)
		m := n.Metrics()
		if m.MaxDegree != d || int(m.Diameter) != d {
			t.Errorf("Γ_%d: degree %d diameter %d", d, m.MaxDegree, m.Diameter)
		}
		if !m.Connected || !m.Bipartite {
			t.Errorf("Γ_%d: connected=%v bipartite=%v", d, m.Connected, m.Bipartite)
		}
		if m.AvgDistance <= 0 || m.AvgDistance > float64(d) {
			t.Errorf("Γ_%d: avg distance %f out of range", d, m.AvgDistance)
		}
	}
}

func TestMetricsString(t *testing.T) {
	if s := NewFibonacci(3).Metrics().String(); s == "" {
		t.Error("empty metrics string")
	}
}

func TestOracleRouterOptimal(t *testing.T) {
	// Oracle hop counts equal true distances on every pair, including on a
	// non-isometric cube.
	for _, fs := range []string{"11", "101"} {
		n := New(core.New(6, bitstr.MustParse(fs)))
		r := NewOracleRouter(n)
		g := n.Cube().Graph()
		for _, pair := range n.AllPairs() {
			res := n.Route(r, pair[0], pair[1], 0)
			if !res.Delivered {
				t.Fatalf("f=%s: oracle failed %v", fs, pair)
			}
			if int32(res.Hops) != g.Dist(pair[0], pair[1]) {
				t.Fatalf("f=%s: oracle hops %d != dist %d for %v", fs, res.Hops, g.Dist(pair[0], pair[1]), pair)
			}
		}
	}
}

func TestGreedyOptimalOnIsometricCubes(t *testing.T) {
	// On isometric cubes greedy delivers every packet in exactly
	// Hamming-distance many hops (stretch 1).
	for _, fs := range []string{"11", "110", "1010", "11010"} {
		n := New(core.New(7, bitstr.MustParse(fs)))
		r := NewGreedyRouter(n)
		for _, pair := range n.AllPairs() {
			res := n.Route(r, pair[0], pair[1], 0)
			if !res.Delivered {
				t.Fatalf("f=%s: greedy failed on %v", fs, pair)
			}
			want := n.Cube().HammingDist(pair[0], pair[1])
			if res.Hops != want {
				t.Fatalf("f=%s: greedy hops %d, Hamming %d on %v", fs, res.Hops, want, pair)
			}
		}
	}
}

func TestGreedyDegradesOnNonIsometricCube(t *testing.T) {
	// Q_6(101) is not isometric: greedy must fail or stretch on some pair,
	// while the oracle still succeeds everywhere.
	n := New(core.New(6, bitstr.MustParse("101")))
	greedy := n.EvaluateRouting(NewGreedyRouter(n), n.AllPairs())
	oracle := n.EvaluateRouting(NewOracleRouter(n), n.AllPairs())
	if oracle.SuccessRate() != 1 {
		t.Fatalf("oracle success %f", oracle.SuccessRate())
	}
	if greedy.SuccessRate() == 1 && greedy.AvgStretch() <= 1 {
		t.Error("greedy should degrade on a non-isometric cube")
	}
}

func TestRouteSelfPair(t *testing.T) {
	n := NewFibonacci(4)
	res := n.Route(NewGreedyRouter(n), 3, 3, 0)
	if !res.Delivered || res.Hops != 0 {
		t.Error("self routing should deliver in 0 hops")
	}
}

func TestSimulateUniformOnFibonacci(t *testing.T) {
	n := NewFibonacci(7)
	pairs := n.UniformPairs(200, 1)
	packets := MakePackets(pairs)
	res := n.Simulate(packets, NewGreedyRouter(n), SimConfig{})
	if res.Delivered != 200 || res.Stuck != 0 || res.Undelivered != 0 {
		t.Fatalf("simulation: %s", res.String())
	}
	// Conservation and sanity.
	if res.Delivered+res.Stuck+res.Undelivered != res.Packets {
		t.Error("packet conservation violated")
	}
	if res.AvgLatency < 1 {
		t.Errorf("avg latency %f", res.AvgLatency)
	}
	// Each packet individually marked.
	for _, p := range packets {
		if !p.Delivered() {
			t.Error("packet not marked delivered")
		}
		if p.Hops() < 1 {
			t.Error("packet with zero hops")
		}
	}
}

func TestSimulatePermutationContention(t *testing.T) {
	n := NewFibonacci(6)
	pairs := n.PermutationPairs(7)
	res := n.Simulate(MakePackets(pairs), NewOracleRouter(n), SimConfig{})
	if res.Delivered != len(pairs) {
		t.Fatalf("permutation: %s", res.String())
	}
	// With one packet per source the max queue can still exceed 1 at
	// intermediate nodes, but must be at least 1.
	if res.MaxQueue < 1 {
		t.Error("max queue should be at least 1")
	}
}

func TestSimulateStuckPackets(t *testing.T) {
	// On Q_6(101) greedy strands some packets; the simulator must classify
	// them as stuck, not leave them undelivered forever.
	n := New(core.New(6, bitstr.MustParse("101")))
	res := n.Simulate(MakePackets(n.AllPairs()), NewGreedyRouter(n), SimConfig{})
	if res.Stuck == 0 {
		t.Skip("greedy did not strand packets on this instance")
	}
	if res.Delivered+res.Stuck+res.Undelivered != res.Packets {
		t.Error("packet conservation violated")
	}
}

func TestSimulateDeterminism(t *testing.T) {
	n := NewFibonacci(6)
	pairs := n.UniformPairs(100, 99)
	a := n.Simulate(MakePackets(pairs), NewGreedyRouter(n), SimConfig{})
	b := n.Simulate(MakePackets(pairs), NewGreedyRouter(n), SimConfig{})
	if a != b {
		t.Errorf("simulation not deterministic:\n%s\n%s", a.String(), b.String())
	}
}

func TestSimulateSelfTraffic(t *testing.T) {
	n := NewFibonacci(4)
	packets := []Packet{{ID: 0, Src: 2, Dst: 2}}
	res := n.Simulate(packets, NewGreedyRouter(n), SimConfig{})
	if res.Delivered != 1 || res.Rounds != 0 {
		t.Errorf("self traffic: %s", res.String())
	}
}

func TestBroadcast(t *testing.T) {
	n := NewFibonacci(7)
	zero, ok := n.Cube().Rank(bitstr.Zeros(7))
	if !ok {
		t.Fatal("0^7 should be a vertex")
	}
	res := n.Broadcast(zero)
	if res.Reached != n.Size() {
		t.Errorf("broadcast reached %d of %d", res.Reached, n.Size())
	}
	if res.Messages != n.Size()-1 {
		t.Errorf("messages %d", res.Messages)
	}
	// From 0^d every vertex is within d hops, and the eccentricity of 0^d
	// in Γ_d is at most d.
	if res.Rounds > 7 {
		t.Errorf("broadcast rounds %d > 7", res.Rounds)
	}
}

func TestTrafficGenerators(t *testing.T) {
	n := NewFibonacci(6)
	pairs := n.UniformPairs(50, 3)
	if len(pairs) != 50 {
		t.Fatal("uniform count wrong")
	}
	for _, p := range pairs {
		if p[0] == p[1] || p[0] < 0 || p[0] >= n.Size() {
			t.Fatal("bad uniform pair")
		}
	}
	perm := n.PermutationPairs(3)
	seenSrc := map[int]bool{}
	for _, p := range perm {
		if seenSrc[p[0]] {
			t.Fatal("duplicate source in permutation")
		}
		seenSrc[p[0]] = true
	}
	hot := n.HotspotPairs(100, 0, 0.8, 3)
	hits := 0
	for _, p := range hot {
		if p[1] == 0 {
			hits++
		}
	}
	if hits < 50 {
		t.Errorf("hotspot hits only %d/100", hits)
	}
	if got := len(n.AllPairs()); got != n.Size()*(n.Size()-1) {
		t.Errorf("AllPairs %d", got)
	}
}

func TestFaultTrial(t *testing.T) {
	n := NewFibonacci(6)
	// Killing nothing keeps everything connected.
	res := n.FaultTrial(nil)
	if !res.SurvivorsConnected || res.LargestComponent != n.Size() || res.RoutableFraction != 1 {
		t.Errorf("no-fault trial: %+v", res)
	}
	// Killing 0^6 (the max-degree hub) must keep Γ_6 connected: Fibonacci
	// cubes remain connected after one vertex deletion for d >= 2.
	zero, _ := n.Cube().Rank(bitstr.Zeros(6))
	res = n.FaultTrial([]int{zero})
	if !res.SurvivorsConnected {
		t.Error("Γ_6 minus hub should stay connected")
	}
	// Duplicate kills count once.
	res = n.FaultTrial([]int{1, 1})
	if res.Killed != 1 {
		t.Errorf("duplicate kill counted: %+v", res)
	}
}

func TestRandomFaults(t *testing.T) {
	n := NewFibonacci(7)
	st := n.RandomFaults(3, 20, 11)
	if st.Trials != 20 || st.Killed != 3 {
		t.Fatalf("stats header wrong: %+v", st)
	}
	if st.MeanRoutable <= 0 || st.MeanRoutable > 1 {
		t.Errorf("mean routable %f", st.MeanRoutable)
	}
	if st.WorstRoutable > st.MeanRoutable {
		t.Errorf("worst %f > mean %f", st.WorstRoutable, st.MeanRoutable)
	}
	if st.MeanLargest > float64(n.Size()-3) {
		t.Errorf("largest component too large: %f", st.MeanLargest)
	}
}

func TestArticulationFractionMatchesTarjan(t *testing.T) {
	// The trial-based fraction must equal 1 - (#articulation points)/n on
	// connected networks with at least 3 nodes (linear-time cross-check).
	for _, d := range []int{4, 6, 8} {
		n := NewFibonacci(d)
		cuts := n.Cube().Graph().ArticulationPoints()
		want := 1 - float64(len(cuts))/float64(n.Size())
		got := n.ArticulationFreeFraction()
		if diff := got - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("Γ_%d: trial fraction %f, Tarjan fraction %f", d, got, want)
		}
	}
	// And the bridge set must match the link-fault bridge scan on a path.
	p := New(core.New(5, bitstr.MustParse("10")))
	if got := len(p.Cube().Graph().Bridges()); got != p.Cube().M() {
		t.Errorf("path bridges = %d, want all %d edges", got, p.Cube().M())
	}
}

func TestArticulationFreeFraction(t *testing.T) {
	// Γ_2 = P_3 and Γ_3 have articulation points (removing 0^d isolates a
	// leaf); from d = 4 on, deleting any single vertex keeps Γ_d connected.
	if got := NewFibonacci(2).ArticulationFreeFraction(); got >= 1 {
		t.Errorf("Γ_2 articulation-free fraction %f, expected < 1", got)
	}
	for d := 4; d <= 7; d++ {
		n := NewFibonacci(d)
		if got := n.ArticulationFreeFraction(); got != 1 {
			t.Errorf("Γ_%d articulation-free fraction %f", d, got)
		}
	}
	// A path network has interior articulation points.
	p := New(core.New(4, bitstr.MustParse("10"))) // P_5
	if got := p.ArticulationFreeFraction(); got >= 1 {
		t.Errorf("path articulation-free fraction %f", got)
	}
}
