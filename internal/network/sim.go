package network

import (
	"context"
	"fmt"
	"sort"
)

// Packet is a unit of traffic in the synchronous simulator.
type Packet struct {
	ID  int
	Src int
	Dst int

	// Simulation state.
	cur       int
	hops      int
	delivered bool
	stuck     bool
}

// SimConfig controls the synchronous store-and-forward simulation.
type SimConfig struct {
	// MaxRounds bounds the simulation; 0 means 8*diameter+16.
	MaxRounds int
}

// SimResult aggregates a simulation run.
type SimResult struct {
	Packets     int
	Delivered   int
	Stuck       int // packets whose router had no productive hop
	Undelivered int // packets still queued when MaxRounds expired
	Rounds      int
	TotalHops   int
	MaxHops     int
	// AvgLatency is mean delivery round over delivered packets.
	AvgLatency float64
	// MaxQueue is the maximum number of packets queued at one node at the
	// start of any round.
	MaxQueue int
}

// Simulate runs a synchronous store-and-forward simulation: in each round
// every directed link carries at most one packet, nodes forward queued
// packets in FIFO order, and contended packets wait. The router supplies
// next hops. The simulation is deterministic for a fixed input.
func (n *Network) Simulate(packets []Packet, r Router, cfg SimConfig) SimResult {
	res, _ := n.SimulateCtx(context.Background(), packets, r, cfg)
	return res
}

// SimulateCtx is Simulate with cooperative cancellation between rounds: when
// ctx is done the partial result is discarded and the context error is
// returned.
func (n *Network) SimulateCtx(ctx context.Context, packets []Packet, r Router, cfg SimConfig) (SimResult, error) {
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		diam := int(n.g.Stats().Diameter)
		if diam < 1 {
			diam = 1
		}
		maxRounds = 8*diam + 16
	}
	// Per-node FIFO queues.
	queues := make([][]int, n.Size()) // packet indices
	res := SimResult{Packets: len(packets)}
	var sumLatency int
	live := 0
	for i := range packets {
		p := &packets[i]
		p.cur = p.Src
		if p.Src == p.Dst {
			p.delivered = true
			res.Delivered++
			continue
		}
		queues[p.Src] = append(queues[p.Src], i)
		live++
	}
	linkUsed := make(map[[2]int]bool)
	for round := 1; round <= maxRounds && live > 0; round++ {
		if err := ctx.Err(); err != nil {
			return SimResult{}, err
		}
		res.Rounds = round
		for _, q := range queues {
			if len(q) > res.MaxQueue {
				res.MaxQueue = len(q)
			}
		}
		// Collect moves node by node in increasing id order for determinism.
		clear(linkUsed)
		type move struct{ pkt, from, to int }
		var moves []move
		for node := 0; node < n.Size(); node++ {
			q := queues[node]
			kept := q[:0]
			for _, pi := range q {
				p := &packets[pi]
				next, ok := r.NextHop(p.cur, p.Dst)
				if !ok {
					p.stuck = true
					res.Stuck++
					live--
					continue
				}
				link := [2]int{node, next}
				if linkUsed[link] {
					kept = append(kept, pi) // wait for next round
					continue
				}
				linkUsed[link] = true
				moves = append(moves, move{pkt: pi, from: node, to: next})
			}
			queues[node] = kept
		}
		for _, mv := range moves {
			p := &packets[mv.pkt]
			p.cur = mv.to
			p.hops++
			if p.cur == p.Dst {
				p.delivered = true
				res.Delivered++
				res.TotalHops += p.hops
				if p.hops > res.MaxHops {
					res.MaxHops = p.hops
				}
				sumLatency += round
				live--
			} else {
				queues[p.cur] = append(queues[p.cur], mv.pkt)
			}
		}
	}
	res.Undelivered = live
	if res.Delivered > 0 {
		res.AvgLatency = float64(sumLatency) / float64(res.Delivered)
	}
	return res, nil
}

// String renders a one-line summary.
func (r SimResult) String() string {
	return fmt.Sprintf("packets=%d delivered=%d stuck=%d undelivered=%d rounds=%d avg_latency=%.2f max_queue=%d",
		r.Packets, r.Delivered, r.Stuck, r.Undelivered, r.Rounds, r.AvgLatency, r.MaxQueue)
}

// BroadcastResult describes a one-to-all broadcast along a BFS tree.
type BroadcastResult struct {
	Root     int
	Rounds   int // eccentricity of the root
	Messages int // one per tree edge = n-1 on a connected network
	Reached  int
}

// Broadcast performs a one-to-all broadcast from root along the BFS spanning
// tree: in round t every node at depth t receives the message from its tree
// parent. This is the standard broadcasting scheme of the ICPP-era papers.
func (n *Network) Broadcast(root int) BroadcastResult {
	dist := make([]int32, n.Size())
	n.g.BFS(root, dist)
	res := BroadcastResult{Root: root}
	for _, d := range dist {
		if d < 0 {
			continue
		}
		res.Reached++
		if int(d) > res.Rounds {
			res.Rounds = int(d)
		}
	}
	res.Messages = res.Reached - 1
	return res
}

// SortPacketsByID restores input order after a simulation, for deterministic
// reporting.
func SortPacketsByID(ps []Packet) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].ID < ps[j].ID })
}

// Delivered reports whether the packet reached its destination.
func (p Packet) Delivered() bool { return p.delivered }

// Stuck reports whether the router gave up on the packet.
func (p Packet) Stuck() bool { return p.stuck }

// Hops returns the number of hops the packet took.
func (p Packet) Hops() int { return p.hops }
