package network

import (
	"math/rand"

	"gfcube/internal/graph"
)

// FaultTrialResult describes one fault-injection trial: kill a set of nodes,
// then measure what remains.
type FaultTrialResult struct {
	Killed             int
	SurvivorsConnected bool
	LargestComponent   int
	// DiameterAfter is the diameter of the largest surviving component.
	DiameterAfter int32
	// RoutableFraction is the fraction of ordered survivor pairs that remain
	// mutually reachable.
	RoutableFraction float64
}

// FaultStats aggregates fault trials at a fixed kill count.
type FaultStats struct {
	Trials            int
	Killed            int
	ConnectedTrials   int
	MeanLargest       float64
	MeanRoutable      float64
	WorstRoutable     float64
	MeanDiameterAfter float64
}

// FaultTrial removes the given nodes and measures the surviving topology.
func (n *Network) FaultTrial(killed []int) FaultTrialResult {
	size := n.Size()
	dead := make([]bool, size)
	count := 0
	for _, v := range killed {
		if !dead[v] {
			dead[v] = true
			count++
		}
	}
	keep := make([]int, 0, size-count)
	for v := 0; v < size; v++ {
		if !dead[v] {
			keep = append(keep, v)
		}
	}
	res := FaultTrialResult{Killed: count}
	if len(keep) == 0 {
		res.SurvivorsConnected = true
		res.RoutableFraction = 1
		return res
	}
	sub, _ := n.g.Subgraph(keep)
	comp, k := sub.Components()
	sizes := make([]int, k)
	for _, c := range comp {
		sizes[c]++
	}
	largest, largestID := 0, 0
	for id, s := range sizes {
		if s > largest {
			largest, largestID = s, id
		}
	}
	res.LargestComponent = largest
	res.SurvivorsConnected = k <= 1
	// Routable pairs: within components.
	var routable float64
	for _, s := range sizes {
		routable += float64(s) * float64(s-1)
	}
	total := float64(len(keep)) * float64(len(keep)-1)
	if total > 0 {
		res.RoutableFraction = routable / total
	} else {
		res.RoutableFraction = 1
	}
	// Diameter of the largest surviving component.
	var members []int
	for v, c := range comp {
		if c == int32(largestID) {
			members = append(members, v)
		}
	}
	lg, _ := sub.Subgraph(members)
	res.DiameterAfter = lg.Stats().Diameter
	return res
}

// RandomFaults runs trials independent fault trials killing `kill` random
// distinct nodes each, deterministic for a fixed seed.
func (n *Network) RandomFaults(kill, trials int, seed int64) FaultStats {
	rng := rand.New(rand.NewSource(seed))
	st := FaultStats{Trials: trials, Killed: kill, WorstRoutable: 1}
	size := n.Size()
	for trial := 0; trial < trials; trial++ {
		perm := rng.Perm(size)
		res := n.FaultTrial(perm[:kill])
		if res.SurvivorsConnected {
			st.ConnectedTrials++
		}
		st.MeanLargest += float64(res.LargestComponent)
		st.MeanRoutable += res.RoutableFraction
		st.MeanDiameterAfter += float64(res.DiameterAfter)
		if res.RoutableFraction < st.WorstRoutable {
			st.WorstRoutable = res.RoutableFraction
		}
	}
	if trials > 0 {
		st.MeanLargest /= float64(trials)
		st.MeanRoutable /= float64(trials)
		st.MeanDiameterAfter /= float64(trials)
	}
	return st
}

// LinkFaultTrial removes the given links (edges, as index pairs into the
// graph) and measures the surviving topology, mirroring FaultTrial for
// edge failures.
func (n *Network) LinkFaultTrial(killed [][2]int32) FaultTrialResult {
	dead := make(map[[2]int32]bool, len(killed))
	for _, e := range killed {
		if e[0] > e[1] {
			e[0], e[1] = e[1], e[0]
		}
		dead[e] = true
	}
	b := graph.NewBuilder(n.g.N())
	count := 0
	n.g.Edges(func(u, v int) {
		key := [2]int32{int32(u), int32(v)}
		if dead[key] {
			count++
			return
		}
		b.AddEdge(u, v)
	})
	sub := b.Build()
	res := FaultTrialResult{Killed: count}
	comp, k := sub.Components()
	sizes := make([]int, k)
	for _, c := range comp {
		sizes[c]++
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	res.LargestComponent = largest
	res.SurvivorsConnected = k <= 1
	var routable float64
	for _, s := range sizes {
		routable += float64(s) * float64(s-1)
	}
	total := float64(sub.N()) * float64(sub.N()-1)
	if total > 0 {
		res.RoutableFraction = routable / total
	} else {
		res.RoutableFraction = 1
	}
	res.DiameterAfter = sub.Stats().Diameter
	return res
}

// RandomLinkFaults runs trials independent link-fault trials killing `kill`
// random distinct links each.
func (n *Network) RandomLinkFaults(kill, trials int, seed int64) FaultStats {
	rng := rand.New(rand.NewSource(seed))
	st := FaultStats{Trials: trials, Killed: kill, WorstRoutable: 1}
	edges := n.g.EdgeList()
	for trial := 0; trial < trials; trial++ {
		perm := rng.Perm(len(edges))
		sel := make([][2]int32, 0, kill)
		for _, i := range perm[:kill] {
			sel = append(sel, edges[i])
		}
		res := n.LinkFaultTrial(sel)
		if res.SurvivorsConnected {
			st.ConnectedTrials++
		}
		st.MeanLargest += float64(res.LargestComponent)
		st.MeanRoutable += res.RoutableFraction
		st.MeanDiameterAfter += float64(res.DiameterAfter)
		if res.RoutableFraction < st.WorstRoutable {
			st.WorstRoutable = res.RoutableFraction
		}
	}
	if trials > 0 {
		st.MeanLargest /= float64(trials)
		st.MeanRoutable /= float64(trials)
		st.MeanDiameterAfter /= float64(trials)
	}
	return st
}

// ArticulationFreeFraction reports the fraction of single-node failures that
// leave the network connected (1.0 means no articulation vertices). This is
// the recursive fault-tolerance property studied for Fibonacci cubes
// (paper reference [9]).
func (n *Network) ArticulationFreeFraction() float64 {
	size := n.Size()
	if size <= 2 {
		return 1
	}
	ok := 0
	for v := 0; v < size; v++ {
		res := n.FaultTrial([]int{v})
		if res.SurvivorsConnected {
			ok++
		}
	}
	return float64(ok) / float64(size)
}
