package network

import (
	"fmt"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

// Hop is one step of a rank-addressed route trace: the vertex word and its
// index in the cube's increasing vertex enumeration — the node address in
// Hsu's Zeckendorf addressing, generalized to any forbidden factor.
type Hop struct {
	Rank int64
	Word bitstr.Word
}

// ViewRouter runs the distributed word-level router over any cube backend
// (core.CubeView) and reports rank-addressed traces. Endpoints may be
// given as words or as ranks; every hop decision remains a local factor
// test and every address translation an O(d) table walk, so on the
// implicit backend a route query on Q_62(11) — about 10^13 nodes — costs
// a handful of table lookups and never touches a global structure.
type ViewRouter struct {
	view core.CubeView
	wr   *WordRouter
}

// NewViewRouter builds a rank-addressed router over the backend v.
func NewViewRouter(v core.CubeView) *ViewRouter {
	return &ViewRouter{view: v, wr: NewWordRouter(v.Factor())}
}

// View returns the backend the router translates addresses against.
func (r *ViewRouter) View() core.CubeView { return r.view }

// RouteWords walks from src to dst (vertex words of dimension d) and
// returns the rank-addressed trace including both endpoints. ok is false
// when an endpoint is not a vertex, the router got stuck, or maxHops
// (0 = 4·d) was exceeded; the trace still holds the prefix walked.
func (r *ViewRouter) RouteWords(src, dst bitstr.Word, maxHops int) ([]Hop, bool) {
	if !r.view.Contains(src) || !r.view.Contains(dst) {
		return nil, false
	}
	path, ok := r.wr.Route(src, dst, maxHops)
	hops := make([]Hop, len(path))
	for i, w := range path {
		rank, _ := r.view.RankWord(w)
		hops[i] = Hop{Rank: rank, Word: w}
	}
	return hops, ok
}

// RouteRanks is RouteWords with the endpoints given as ranks in
// [0, Order()). The error reports an out-of-range endpoint.
func (r *ViewRouter) RouteRanks(src, dst int64, maxHops int) ([]Hop, bool, error) {
	sw, ok := r.view.UnrankWord(src)
	if !ok {
		return nil, false, fmt.Errorf("network: src rank %d out of range [0, %d)", src, r.view.Order())
	}
	dw, ok := r.view.UnrankWord(dst)
	if !ok {
		return nil, false, fmt.Errorf("network: dst rank %d out of range [0, %d)", dst, r.view.Order())
	}
	hops, ok := r.RouteWords(sw, dw, maxHops)
	return hops, ok, nil
}
