package network

// SaturationPoint is one row of a load sweep: injecting load×n uniform
// packets into the synchronous simulator and draining them completely.
type SaturationPoint struct {
	// Load is the number of packets per node injected at round zero.
	Load int
	// Packets is the total injected (Load × nodes).
	Packets int
	// Rounds is the time to drain everything.
	Rounds int
	// AvgLatency is the mean delivery round.
	AvgLatency float64
	// MaxQueue is the worst per-node queue observed.
	MaxQueue int
	// Delivered counts completions (equals Packets unless the router
	// strands traffic).
	Delivered int
}

// Saturation sweeps injection load and reports how the network saturates:
// as offered load grows, link contention stretches both drain time and
// queue depth. This is the classic throughput-vs-load curve of the
// interconnection-network literature, driven here by any Router.
func (n *Network) Saturation(loads []int, r Router, seed int64) []SaturationPoint {
	out := make([]SaturationPoint, 0, len(loads))
	for i, load := range loads {
		count := load * n.Size()
		pairs := n.UniformPairs(count, seed+int64(i))
		res := n.Simulate(MakePackets(pairs), r, SimConfig{MaxRounds: 64 * (load + 1) * n.Cube().D()})
		out = append(out, SaturationPoint{
			Load:       load,
			Packets:    count,
			Rounds:     res.Rounds,
			AvgLatency: res.AvgLatency,
			MaxQueue:   res.MaxQueue,
			Delivered:  res.Delivered,
		})
	}
	return out
}
