package network

import (
	"gfcube/internal/automaton"
	"gfcube/internal/bitstr"
)

// WordRouter is the distributed form of the greedy bit-fixing router: it
// works directly on vertex words of any dimension, deciding each hop with
// only the current address, the destination address and O(d·|f|) local
// factor tests - no global cube construction, no routing tables. This is the
// algorithmic content of the distributed shortest-path routing line of work
// for Fibonacci-type interconnection networks (paper reference [11]):
// on an isometric Q_d(f) the router is optimal (exactly Hamming-distance
// many hops), and it scales to dimensions far beyond explicit construction.
type WordRouter struct {
	f   bitstr.Word
	dfa *automaton.DFA
}

// NewWordRouter builds a word-level router for the factor f.
func NewWordRouter(f bitstr.Word) *WordRouter {
	return &WordRouter{f: f, dfa: automaton.New(f)}
}

// Factor returns the forbidden factor.
func (r *WordRouter) Factor() bitstr.Word { return r.f }

// NextHop returns the next vertex on the way from cur to dst, using the
// canonical-path preference of Section 2: clear wrong 1s left to right,
// then set missing 1s left to right, always staying inside Q_d(f). ok is
// false when no productive hop exists (possible only on non-isometric
// instances).
func (r *WordRouter) NextHop(cur, dst bitstr.Word) (bitstr.Word, bool) {
	if cur == dst {
		return cur, true
	}
	d := cur.Len()
	diff := cur.Bits ^ dst.Bits
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < d; i++ {
			mask := uint64(1) << uint(d-1-i)
			if diff&mask == 0 {
				continue
			}
			bit := cur.Bits & mask
			if (pass == 0) != (bit != 0) {
				continue // pass 0 clears 1s, pass 1 sets 0s
			}
			next := cur.Flip(i)
			if r.dfa.Avoids(next) {
				return next, true
			}
		}
	}
	return cur, false
}

// Route walks from src to dst and returns the full vertex path including
// both endpoints. ok is false if the router got stuck or exceeded maxHops
// (0 means 4·d).
func (r *WordRouter) Route(src, dst bitstr.Word, maxHops int) ([]bitstr.Word, bool) {
	if src.Len() != dst.Len() {
		panic("network: route endpoints of different dimension")
	}
	if !r.dfa.Avoids(src) || !r.dfa.Avoids(dst) {
		return nil, false
	}
	if maxHops <= 0 {
		maxHops = 4 * src.Len()
		if maxHops == 0 {
			maxHops = 4
		}
	}
	path := []bitstr.Word{src}
	cur := src
	for cur != dst {
		next, ok := r.NextHop(cur, dst)
		if !ok {
			return path, false
		}
		cur = next
		path = append(path, cur)
		if len(path) > maxHops+1 {
			return path, false
		}
	}
	return path, true
}
