package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// hostMux serves the work-lease protocol straight off a Host, mapping
// lease errors onto the statuses the service layer uses. It keeps the
// fabric wire format testable without importing internal/service.
func hostMux(h *Host) http.Handler {
	writeErr := func(w http.ResponseWriter, err error) {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrLeaseNotFound):
			status = http.StatusNotFound
		case errors.Is(err, ErrLeaseConflict):
			status = http.StatusConflict
		case errors.Is(err, ErrHostBusy):
			status = http.StatusTooManyRequests
		}
		http.Error(w, err.Error(), status)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/fabric/lease", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			var req LeaseRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeErr(w, err)
				return
			}
			state, err := h.Start(req.Spec, req.LeaseID, req.Cells, time.Duration(req.TTLMs)*time.Millisecond)
			if err != nil {
				writeErr(w, err)
				return
			}
			json.NewEncoder(w).Encode(LeaseResponse{
				LeaseID: state.LeaseID, Total: state.Total, Renewed: state.Renewed,
				DeadlineMs: state.Deadline.UnixMilli(),
			})
		case http.MethodDelete:
			id := r.URL.Query().Get("lease")
			if err := h.Cancel(id); err != nil {
				writeErr(w, err)
				return
			}
			json.NewEncoder(w).Encode(CancelResponse{LeaseID: id, Canceled: true})
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/v1/fabric/report", func(w http.ResponseWriter, r *http.Request) {
		from, _ := strconv.Atoi(r.URL.Query().Get("from"))
		max, _ := strconv.Atoi(r.URL.Query().Get("max"))
		chunk, err := h.Report(r.URL.Query().Get("lease"), from, max)
		if err != nil {
			writeErr(w, err)
			return
		}
		resp := ReportResponse{
			LeaseID: chunk.LeaseID, From: chunk.From, Next: chunk.Next,
			Total: chunk.Total, Done: chunk.Done, Err: chunk.Err,
		}
		for _, p := range chunk.Payloads {
			resp.Cells = append(resp.Cells, ReportWireCell{Payload: p})
		}
		json.NewEncoder(w).Encode(resp)
	})
	return mux
}

func TestRemoteWorkerEndToEnd(t *testing.T) {
	sp := testSpec(t)
	h := NewHost(HostConfig{})
	defer h.Close()
	srv := httptest.NewServer(hostMux(h))
	defer srv.Close()

	w := NewRemoteWorker("remote", srv.URL, srv.Client(), 2, time.Millisecond)
	path := t.TempDir() + "/run.gfcl"
	got := runCoordinator(t, sp, path, []Worker{w}, Options{Poll: 2 * time.Millisecond})
	want, err := Oracle(context.Background(), sp, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("remote-worker run differs from oracle")
	}
	scan, err := VerifyLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Duplicates != 0 || scan.Damaged {
		t.Fatalf("remote run ledger: dups=%d damaged=%v", scan.Duplicates, scan.Damaged)
	}
}

func TestRemoteWorkerRetriesTransientFailures(t *testing.T) {
	sp := testSpec(t)
	h := NewHost(HostConfig{})
	defer h.Close()
	inner := hostMux(h)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Every odd-numbered request fails with a 503 — each protocol
		// call needs at least one retry to get through.
		if calls.Add(1)%2 == 1 {
			http.Error(w, "worker warming up", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	w := NewRemoteWorker("flaky", srv.URL, srv.Client(), 3, time.Millisecond)
	cells := sp.Cells()
	state, err := w.Start(context.Background(), sp, "L1", cells, time.Minute)
	if err != nil {
		t.Fatalf("start through flaky transport: %v", err)
	}
	if state.Total != len(cells) {
		t.Fatalf("lease total %d, want %d", state.Total, len(cells))
	}
	deadline := time.Now().Add(10 * time.Second)
	from := 0
	var n int
	for {
		chunk, err := w.Report(context.Background(), "L1", from, 0)
		if err != nil {
			t.Fatalf("report through flaky transport: %v", err)
		}
		n += len(chunk.Payloads)
		from = chunk.Next
		if chunk.Done && len(chunk.Payloads) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never completed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n != len(cells) {
		t.Fatalf("fetched %d cells, want %d", n, len(cells))
	}
	if err := w.Cancel(context.Background(), "L1"); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteWorkerGivesUpAfterRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	w := NewRemoteWorker("dead", srv.URL, srv.Client(), 2, time.Millisecond)
	if _, err := w.Report(context.Background(), "L1", 0, 0); err == nil {
		t.Fatal("permanently failing worker returned no error")
	}
}

func TestRemoteWorkerMapsNotFound(t *testing.T) {
	h := NewHost(HostConfig{})
	defer h.Close()
	srv := httptest.NewServer(hostMux(h))
	defer srv.Close()
	w := NewRemoteWorker("remote", srv.URL, srv.Client(), 2, time.Millisecond)
	if _, err := w.Report(context.Background(), "ghost", 0, 0); !errors.Is(err, ErrLeaseNotFound) {
		t.Fatalf("missing lease over HTTP: err = %v, want ErrLeaseNotFound", err)
	}
	// Canceling a missing lease is success: the goal state already holds.
	if err := w.Cancel(context.Background(), "ghost"); err != nil {
		t.Fatalf("cancel of missing lease: %v", err)
	}
}
