package fabric

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// The results ledger is an append-only file of hash-chained records, one
// per completed grid cell. Each record carries the SHA-256 of its own
// payload and a chain hash over (previous chain hash, sequence number,
// payload hash), seeded from the hash of the spec header — the same
// store-the-artifact / anchor-the-hash discipline as internal/store's
// containers, applied to an experiment log. The chain makes the ledger
// tamper-evident and gives interruption a precise meaning: however a run
// dies (worker SIGKILL, coordinator SIGKILL, torn tail write, a flipped
// byte on disk), the longest valid chained prefix is unambiguous, and
// resume restarts from exactly there, recomputing forward.
//
// Layout (all integers little-endian):
//
//	header:
//	  0   8   magic "GFCLDG01"
//	  8   4   format version (uint32, currently 1)
//	  12  4   spec JSON length S (uint32)
//	  16  32  SHA-256 of the spec JSON
//	  48  S   spec JSON (canonical encoding of Spec)
//	record i (seq = i, starting at 0):
//	  0   4   record magic "GFCR"
//	  4   4   payload length N (uint32)
//	  8   8   seq (uint64)
//	  16  32  SHA-256 of payload
//	  48  32  chain hash: SHA-256(prev chain || seq || payload hash),
//	          where record 0's prev chain is SHA-256("gfcledger1|" || spec JSON)
//	  80  N   payload (canonical Record JSON)
//
// Verification ladder on open: header magic -> version -> spec hash ->
// per record: magic -> length bounds -> seq -> payload hash -> chain
// hash. The first failure ends the valid prefix; everything after it is
// discarded by truncation when the ledger is opened for append.

// LedgerVersion is the on-disk ledger format version.
const LedgerVersion = 1

const (
	ledgerMagic    = "GFCLDG01"
	recordMagic    = "GFCR"
	ledgerHdrSize  = 48
	recordHdrSize  = 80
	maxSpecLen     = 1 << 16 // sanity bound when reading untrusted headers
	maxPayloadSize = 1 << 24 // per-record payload sanity bound (16 MiB)
)

// ErrLedgerCorrupt wraps header-level failures: a file that is not a
// ledger, a version mismatch, or a spec that does not match the caller's.
// Record-level damage is NOT an error — it just ends the valid prefix.
var ErrLedgerCorrupt = errors.New("fabric: corrupt ledger")

// chainSeed is H_{-1}: the chain anchor derived from the spec JSON.
func chainSeed(specJSON []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("gfcledger1|"))
	h.Write(specJSON)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func chainHash(prev [32]byte, seq uint64, payloadSum [32]byte) [32]byte {
	var seqb [8]byte
	binary.LittleEndian.PutUint64(seqb[:], seq)
	h := sha256.New()
	h.Write(prev[:])
	h.Write(seqb[:])
	h.Write(payloadSum[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Ledger is an open results ledger positioned for append after its valid
// prefix. It is not safe for concurrent use; the coordinator serializes
// appends.
type Ledger struct {
	f        *os.File
	spec     Spec
	specJSON []byte
	chain    [32]byte // chain hash of the last valid record
	seq      uint64   // next sequence number
	records  []Record // valid prefix, in append order
	appends  uint64   // records appended by this process
	trimmed  int64    // bytes discarded past the valid prefix on open
}

// ScanResult is what VerifyLedger reports about a ledger file.
type ScanResult struct {
	Spec       Spec
	Records    []Record
	ValidBytes int64 // offset of the first byte past the valid prefix
	TotalBytes int64
	// Damaged is set when TotalBytes > ValidBytes: a torn tail or a
	// corrupt record ended the scan before the end of the file.
	Damaged bool
	// DamageReason describes what ended the prefix when Damaged.
	DamageReason string
	// Duplicates counts records whose cell index was already recorded —
	// always zero for coordinator-written ledgers.
	Duplicates int
}

// CreateLedger creates a fresh ledger at path bound to sp (which must be
// normalized). It fails if path already exists: an existing ledger must
// be opened with OpenLedger to resume, never silently overwritten.
func CreateLedger(path string, sp Spec) (*Ledger, error) {
	specJSON, err := json.Marshal(sp)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fabric: create ledger: %w", err)
	}
	hdr := make([]byte, ledgerHdrSize, ledgerHdrSize+len(specJSON))
	copy(hdr, ledgerMagic)
	binary.LittleEndian.PutUint32(hdr[8:], LedgerVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(specJSON)))
	sum := sha256.Sum256(specJSON)
	copy(hdr[16:], sum[:])
	hdr = append(hdr, specJSON...)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("fabric: create ledger: %w", err)
	}
	return &Ledger{f: f, spec: sp, specJSON: specJSON, chain: chainSeed(specJSON)}, nil
}

// OpenLedger opens an existing ledger for append, verifying the chain
// and truncating anything past the last valid record. When sp is non-nil
// the ledger's spec must match *sp exactly; pass nil to accept whatever
// spec the header declares (gfc-sweepd -resume does this).
func OpenLedger(path string, sp *Spec) (*Ledger, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fabric: open ledger: %w", err)
	}
	scan, specJSON, err := scanLedger(data)
	if err != nil {
		return nil, err
	}
	if sp != nil {
		want, err := json.Marshal(*sp)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(specJSON, want) {
			return nil, fmt.Errorf("%w: ledger records grid %s, run wants %s", ErrLedgerCorrupt, specJSON, want)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fabric: open ledger: %w", err)
	}
	if err := f.Truncate(scan.ValidBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("fabric: truncate ledger to valid prefix: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	l := &Ledger{
		f:        f,
		spec:     scan.Spec,
		specJSON: specJSON,
		chain:    chainSeed(specJSON),
		seq:      uint64(len(scan.Records)),
		records:  scan.Records,
		trimmed:  scan.TotalBytes - scan.ValidBytes,
	}
	// Recompute the chain head over the valid prefix (scanLedger already
	// proved every link, so this is a replay, not a re-verification).
	for i, r := range scan.Records {
		payload, err := json.Marshal(r)
		if err != nil {
			f.Close()
			return nil, err
		}
		l.chain = chainHash(l.chain, uint64(i), sha256.Sum256(payload))
	}
	return l, nil
}

// VerifyLedger scans a ledger file and reports its valid prefix, damage
// and duplicate count without opening it for append or truncating.
func VerifyLedger(path string) (ScanResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ScanResult{}, fmt.Errorf("fabric: verify ledger: %w", err)
	}
	scan, _, err := scanLedger(data)
	return scan, err
}

// scanLedger walks data, verifying the header and every record link, and
// returns the valid prefix. Header-level failures are errors; record
// damage ends the prefix.
func scanLedger(data []byte) (ScanResult, []byte, error) {
	var res ScanResult
	res.TotalBytes = int64(len(data))
	if len(data) < ledgerHdrSize {
		return res, nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrLedgerCorrupt, len(data), ledgerHdrSize)
	}
	if string(data[:8]) != ledgerMagic {
		return res, nil, fmt.Errorf("%w: bad magic", ErrLedgerCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != LedgerVersion {
		return res, nil, fmt.Errorf("%w: format version %d, reader supports %d", ErrLedgerCorrupt, v, LedgerVersion)
	}
	specLen := binary.LittleEndian.Uint32(data[12:])
	if specLen > maxSpecLen || ledgerHdrSize+int(specLen) > len(data) {
		return res, nil, fmt.Errorf("%w: spec length %d out of bounds", ErrLedgerCorrupt, specLen)
	}
	specJSON := data[ledgerHdrSize : ledgerHdrSize+int(specLen)]
	if sum := sha256.Sum256(specJSON); !bytes.Equal(sum[:], data[16:48]) {
		return res, nil, fmt.Errorf("%w: spec checksum mismatch", ErrLedgerCorrupt)
	}
	if err := json.Unmarshal(specJSON, &res.Spec); err != nil {
		return res, nil, fmt.Errorf("%w: spec: %v", ErrLedgerCorrupt, err)
	}

	chain := chainSeed(specJSON)
	off := int64(ledgerHdrSize + int(specLen))
	res.ValidBytes = off
	seen := make(map[int]bool)
	stop := func(reason string) {
		res.Damaged = true
		res.DamageReason = reason
	}
	for seq := uint64(0); ; seq++ {
		rest := data[off:]
		if len(rest) == 0 {
			break
		}
		if len(rest) < recordHdrSize {
			stop(fmt.Sprintf("torn record header at offset %d (%d bytes)", off, len(rest)))
			break
		}
		if string(rest[:4]) != recordMagic {
			stop(fmt.Sprintf("bad record magic at offset %d", off))
			break
		}
		plen := binary.LittleEndian.Uint32(rest[4:])
		if plen > maxPayloadSize {
			stop(fmt.Sprintf("record %d payload length %d exceeds bound", seq, plen))
			break
		}
		if int64(recordHdrSize)+int64(plen) > int64(len(rest)) {
			stop(fmt.Sprintf("torn record %d at offset %d: payload needs %d bytes, file holds %d", seq, off, plen, len(rest)-recordHdrSize))
			break
		}
		if got := binary.LittleEndian.Uint64(rest[8:]); got != seq {
			stop(fmt.Sprintf("record %d carries seq %d", seq, got))
			break
		}
		payload := rest[recordHdrSize : recordHdrSize+int(plen)]
		psum := sha256.Sum256(payload)
		if !bytes.Equal(psum[:], rest[16:48]) {
			stop(fmt.Sprintf("record %d payload checksum mismatch", seq))
			break
		}
		want := chainHash(chain, seq, psum)
		if !bytes.Equal(want[:], rest[48:80]) {
			stop(fmt.Sprintf("record %d chain hash mismatch", seq))
			break
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			stop(fmt.Sprintf("record %d payload is not a cell record: %v", seq, err))
			break
		}
		if seen[rec.I] {
			res.Duplicates++
		}
		seen[rec.I] = true
		chain = want
		res.Records = append(res.Records, rec)
		off += int64(recordHdrSize) + int64(plen)
		res.ValidBytes = off
	}
	return res, specJSON, nil
}

// Spec returns the grid the ledger is bound to.
func (l *Ledger) Spec() Spec { return l.spec }

// Records returns the valid records loaded at open plus everything
// appended since, in append order. The slice is shared; callers must not
// mutate it.
func (l *Ledger) Records() []Record { return l.records }

// Appends reports how many records this process appended (for metrics).
func (l *Ledger) Appends() uint64 { return l.appends }

// Trimmed reports how many bytes past the valid prefix were discarded
// when the ledger was opened (0 for a clean file).
func (l *Ledger) Trimmed() int64 { return l.trimmed }

// Append chains and writes one cell record. The payload bytes are the
// canonical encoding of rec; callers must already have deduplicated by
// cell index.
func (l *Ledger) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if len(payload) > maxPayloadSize {
		return fmt.Errorf("fabric: record payload %d bytes exceeds bound", len(payload))
	}
	psum := sha256.Sum256(payload)
	next := chainHash(l.chain, l.seq, psum)
	buf := make([]byte, recordHdrSize, recordHdrSize+len(payload))
	copy(buf, recordMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[8:], l.seq)
	copy(buf[16:], psum[:])
	copy(buf[48:], next[:])
	buf = append(buf, payload...)
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("fabric: append record: %w", err)
	}
	l.chain = next
	l.seq++
	l.appends++
	l.records = append(l.records, rec)
	return nil
}

// Sync flushes appended records to stable storage.
func (l *Ledger) Sync() error { return l.f.Sync() }

// Close syncs and closes the underlying file.
func (l *Ledger) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// ResultSet renders records as the canonical result set: one payload
// line per cell in grid order (ascending cell index), each terminated by
// a newline. This is the byte-reproducible artifact of a run: any
// complete ledger for a grid — sharded, stolen from, interrupted and
// resumed — renders exactly the bytes of a single-process oracle run.
func ResultSet(records []Record) ([]byte, error) {
	sorted := make([]Record, len(records))
	copy(sorted, records)
	// Records are unique by index (the coordinator dedupes), so an index
	// sort restores grid order regardless of append interleaving.
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].I < sorted[j].I })
	var buf bytes.Buffer
	for _, r := range sorted {
		line, err := json.Marshal(r)
		if err != nil {
			return nil, err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}
