package fabric

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

func TestParseOpAllAndUnknown(t *testing.T) {
	for _, op := range []string{"classify", "survey", "degrees", "wiener"} {
		got, err := ParseOp(op)
		if err != nil || string(got) != op {
			t.Fatalf("ParseOp(%q) = %q, %v", op, got, err)
		}
	}
	if _, err := ParseOp("hamilton"); err == nil {
		t.Fatal("ParseOp accepted an unknown op")
	}
}

func TestNormalizeDefaultsAndErrors(t *testing.T) {
	// Defaults: floors and method fill in.
	sp, err := Spec{Op: OpClassify, MaxLen: 2, MaxD: 4}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if sp.MinLen != 1 || sp.MinD != 1 || sp.Method != core.MethodExact.String() {
		t.Fatalf("defaults not filled: %+v", sp)
	}
	// Degrees runs on the implicit backend: d beyond MaxBuildDim is fine.
	if _, err := (Spec{Op: OpDegrees, MaxLen: 2, MaxD: bitstr.MaxLen}).Normalize(); err != nil {
		t.Fatalf("degrees at d=%d: %v", bitstr.MaxLen, err)
	}
	for name, bad := range map[string]Spec{
		"unknown op":         {Op: "nope", MaxLen: 2, MaxD: 4},
		"maxlen < minlen":    {Op: OpClassify, MinLen: 3, MaxLen: 2, MaxD: 4},
		"maxlen over bound":  {Op: OpClassify, MaxLen: bitstr.MaxLen + 1, MaxD: 4},
		"maxd < mind":        {Op: OpClassify, MaxLen: 2, MinD: 5, MaxD: 4},
		"bad method":         {Op: OpClassify, MaxLen: 2, MaxD: 4, Method: "guess"},
		"explicit d too big": {Op: OpClassify, MaxLen: 2, MaxD: core.MaxBuildDim + 1},
		"degrees d too big":  {Op: OpDegrees, MaxLen: 2, MaxD: bitstr.MaxLen + 1},
	} {
		if _, err := bad.Normalize(); err == nil {
			t.Errorf("%s: Normalize accepted %+v", name, bad)
		}
	}
}

func TestDecodeRecordRejectsGarbage(t *testing.T) {
	if _, err := decodeRecord([]byte("{not json")); err == nil {
		t.Fatal("decodeRecord accepted garbage")
	}
}

func TestCountersRenderPromAndSummary(t *testing.T) {
	var c Counters
	c.CellsTotal.Store(12)
	c.CellsDone.Store(7)
	c.Steals.Add(2)
	c.Resumes.Add(1)
	prom := c.RenderProm()
	for _, want := range []string{
		"gfc_sweep_cells_total 12",
		"gfc_sweep_cells_completed_total 7",
		"gfc_fabric_steals_total 2",
		"gfc_sweep_resumes_total 1",
		"# TYPE gfc_fabric_active_shards gauge",
		"# TYPE gfc_sweep_column_reuse_total counter",
		"# TYPE gfc_sweep_column_rebuild_total counter",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("RenderProm missing %q", want)
		}
	}
	sum := c.Summary()
	if !strings.Contains(sum, "cells 7/12") || !strings.Contains(sum, "steals 2") {
		t.Errorf("Summary = %q", sum)
	}
}

func TestCoordinatorTotalPendingSummaryAndLogf(t *testing.T) {
	sp := testSpec(t)
	l, err := CreateLedger(t.TempDir()+"/run.gfcl", sp)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	h := NewHost(HostConfig{})
	defer h.Close()
	logged := 0
	co, err := NewCoordinator(sp, l, Options{
		Workers: []Worker{NewLocalWorker("w", h)},
		Logf:    func(string, ...any) { logged++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if co.Total() != len(sp.Cells()) {
		t.Fatalf("Total = %d, want %d", co.Total(), len(sp.Cells()))
	}
	if logged == 0 {
		t.Fatal("Logf was never called for the plan line")
	}
	ps := co.PendingSummary()
	if !strings.Contains(ps, "0/"+strconv.Itoa(co.Total())) || !strings.Contains(ps, "first missing") {
		t.Fatalf("PendingSummary = %q", ps)
	}
}

func TestLocalWorkerExposesHost(t *testing.T) {
	h := NewHost(HostConfig{})
	defer h.Close()
	w := NewLocalWorker("w", h)
	if w.Host() != h {
		t.Fatal("Host() does not return the wrapped host")
	}
}

func TestLedgerAppendsTrimmedAndReopen(t *testing.T) {
	sp := testSpec(t)
	path := t.TempDir() + "/run.gfcl"
	l, err := CreateLedger(path, sp)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ComputeCell(context.Background(), core.NewScratch(), sp, sp.Cells()[0])
	if err != nil {
		t.Fatal(err)
	}
	rec, err := decodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	if l.Appends() != 1 {
		t.Fatalf("Appends = %d, want 1", l.Appends())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenLedger(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Appends() != 0 || len(re.Records()) != 1 || re.Trimmed() != 0 {
		t.Fatalf("reopened: appends=%d records=%d trimmed=%d", re.Appends(), len(re.Records()), re.Trimmed())
	}
}

func TestOpenLedgerMissingFileIsNotExist(t *testing.T) {
	_, err := OpenLedger(t.TempDir()+"/absent.gfcl", nil)
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v, want fs.ErrNotExist", err)
	}
}

func TestOracleRejectsBadSpecAndCanceledContext(t *testing.T) {
	if _, err := Oracle(context.Background(), Spec{Op: "nope"}, 1, nil); err == nil {
		t.Fatal("Oracle accepted an invalid spec")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Oracle(ctx, testSpec(t), 1, nil); err == nil {
		t.Fatal("Oracle ignored a canceled context")
	}
}

func TestNewCoordinatorRejectsNoWorkersAndForeignLedger(t *testing.T) {
	sp := testSpec(t)
	l, err := CreateLedger(t.TempDir()+"/run.gfcl", sp)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := NewCoordinator(sp, l, Options{}); err == nil {
		t.Fatal("NewCoordinator accepted zero workers")
	}
	// A record outside the grid (e.g. a ledger from a larger sweep fed to
	// a smaller spec) must be rejected before any lease is granted.
	if err := l.Append(Record{I: 10_000, F: "1", D: 1}); err != nil {
		t.Fatal(err)
	}
	h := NewHost(HostConfig{})
	defer h.Close()
	if _, err := NewCoordinator(sp, l, Options{Workers: []Worker{NewLocalWorker("w", h)}}); err == nil {
		t.Fatal("NewCoordinator accepted a ledger with an out-of-grid cell index")
	}
}

func TestRemoteWorkerNonRetryableAndBadJSON(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, strings.Repeat("x", 2048), http.StatusBadRequest)
	}))
	defer bad.Close()
	sp := testSpec(t)
	// Defaults path: nil client, zero retries/backoff.
	w := NewRemoteWorker("w", bad.URL, nil, 0, 0)
	start := time.Now()
	_, err := w.Start(context.Background(), sp, "L1", sp.Cells(), time.Minute)
	if err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Fatalf("err = %v, want immediate HTTP 400", err)
	}
	if len(err.Error()) > 1200 {
		t.Fatalf("error body not truncated: %d bytes", len(err.Error()))
	}
	// Non-retryable errors must not burn the backoff schedule.
	if time.Since(start) > 2*time.Second {
		t.Fatal("400 response was retried with backoff")
	}

	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("not json"))
	}))
	defer garbage.Close()
	g := NewRemoteWorker("g", garbage.URL, nil, 1, time.Millisecond)
	if _, err := g.Start(context.Background(), sp, "L1", sp.Cells(), time.Minute); err == nil {
		t.Fatal("Start accepted a non-JSON 200 body")
	}
	if _, err := g.Report(context.Background(), "L1", 0, 4); err == nil {
		t.Fatal("Report accepted a non-JSON 200 body")
	}
	// Cancel decodes nothing: a 200 of any shape means the lease is gone.
	if err := g.Cancel(context.Background(), "L1"); err != nil {
		t.Fatalf("Cancel on a 200 response: %v", err)
	}
}

// failingWorker errors on every call; the coordinator must route its
// shards to healthy workers and still finish.
type failingWorker struct{}

func (failingWorker) Name() string { return "flaky" }
func (failingWorker) Start(context.Context, Spec, string, []CellRef, time.Duration) (LeaseState, error) {
	return LeaseState{}, errors.New("injected start failure")
}
func (failingWorker) Report(context.Context, string, int, int) (ReportChunk, error) {
	return ReportChunk{}, errors.New("injected report failure")
}
func (failingWorker) Cancel(context.Context, string) error { return nil }

func TestCoordinatorSurvivesAlwaysFailingWorker(t *testing.T) {
	sp := testSpec(t)
	path := t.TempDir() + "/run.gfcl"
	l, err := CreateLedger(path, sp)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	h := NewHost(HostConfig{})
	defer h.Close()
	co, err := NewCoordinator(sp, l, Options{
		Workers: []Worker{failingWorker{}, NewLocalWorker("good", h)},
		Poll:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := co.Counters().LeaseFailures.Load(); got == 0 {
		t.Fatal("failing worker produced no lease failures")
	}
	got, err := ResultSet(l.Records())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Oracle(context.Background(), sp, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("result set differs from oracle despite healthy worker")
	}
}

func TestHostGarbageCollectsFinishedLeases(t *testing.T) {
	sp := testSpec(t)
	h := NewHost(HostConfig{ExpiredGrace: 10 * time.Millisecond})
	defer h.Close()
	cells := sp.Cells()
	if _, err := h.Start(sp, "L1", cells, time.Minute); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	from := 0
	for {
		chunk, err := h.Report("L1", from, 0)
		if err != nil {
			t.Fatal(err)
		}
		from = chunk.Next
		if chunk.Done && len(chunk.Payloads) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never finished")
		}
		time.Sleep(time.Millisecond)
	}
	// Past the grace window the finished lease is collected on the next
	// host entry.
	time.Sleep(30 * time.Millisecond)
	if _, err := h.Report("L1", 0, 0); !errors.Is(err, ErrLeaseNotFound) {
		t.Fatalf("finished lease survived its grace window: %v", err)
	}
}

func TestLedgerCloseTwice(t *testing.T) {
	sp := testSpec(t)
	l, err := CreateLedger(t.TempDir()+"/run.gfcl", sp)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err == nil {
		t.Fatal("second Close on a closed ledger succeeded")
	}
}

func TestLedgerScanMoreDamageVariants(t *testing.T) {
	sp := testSpec(t)
	for name, corrupt := range map[string]func(data []byte, offs []int64) []byte{
		"record magic": func(data []byte, offs []int64) []byte {
			data[offs[1]] ^= 0xFF
			return data
		},
		"sequence number": func(data []byte, offs []int64) []byte {
			data[offs[1]+8] ^= 0x01
			return data
		},
		"payload length bound": func(data []byte, offs []int64) []byte {
			binary.LittleEndian.PutUint32(data[offs[1]+4:], maxPayloadSize+1)
			return data
		},
	} {
		path := fillLedger(t, sp)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		offs := ledgerLayout(t, data)
		if err := os.WriteFile(path, corrupt(data, offs), 0o644); err != nil {
			t.Fatal(err)
		}
		scan, err := VerifyLedger(path)
		if err != nil {
			t.Fatalf("%s: header-level error for record damage: %v", name, err)
		}
		if !scan.Damaged || len(scan.Records) != 1 {
			t.Errorf("%s: damaged=%v records=%d, want damaged prefix of 1", name, scan.Damaged, len(scan.Records))
		}
	}
}
