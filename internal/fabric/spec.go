// Package fabric is the sharded, checkpointed, resumable sweep layer: a
// coordinator/worker subsystem that partitions a (d, f)-grid into shards
// by canonical factor class (rendezvous hashing, so a class always lands
// on the same shard for a fixed shard count), leases shards to workers —
// in-process hosts or remote gfc-serve instances over a small HTTP
// work-lease protocol — and streams every completed cell into an
// append-only hash-chained results ledger. A sweep interrupted anywhere
// (worker SIGKILL, coordinator SIGKILL, torn tail write) resumes from the
// last valid chained record, and the final result set is byte-identical
// to an uninterrupted single-process run of the same grid.
//
// The moving parts:
//
//   - Spec + ops (this file): the grid definition and the per-cell
//     compute functions, shared verbatim by workers and by the
//     single-process oracle so results are reproducible byte for byte.
//   - Ledger (ledger.go): the tamper-evident record of completed cells.
//   - Shards (shard.go): class-affine partition of the cell list.
//   - Host (host.go): the lease executor living inside each worker.
//   - Coordinator (coordinator.go): lease dispatch, lease-timeout
//     recovery, work stealing, deduplicated ledger appends, resume.
//   - HTTP protocol (http.go): the wire types and the remote worker
//     client used against gfc-serve's /v1/fabric endpoints.
package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"math/big"
	"strconv"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
)

// Op names a fabric workload. Each op fixes the task granularity (one
// cell per (class, d) pair, or one per class) and the per-cell compute
// function. The compute functions are deterministic — same cell, same
// payload bytes, on any worker — which is what makes the ledger's result
// set byte-reproducible.
type Op string

const (
	// OpClassify is the Table 1 census: one exact/screen/quick isometry
	// verdict per (class, d) cell.
	OpClassify Op = "classify"
	// OpSurvey is the first-failure survey: one row per class, scanning
	// d up to MaxD until Q_d(f) stops being isometric.
	OpSurvey Op = "survey"
	// OpDegrees is the order/degree-profile grid on the implicit
	// DFA-rank backend: one profile per (class, d) cell, no graph build.
	OpDegrees Op = "degrees"
	// OpWiener is the exact-vs-Hamming Wiener cross-check grid: one
	// comparison per (class, d) cell.
	OpWiener Op = "wiener"
)

// classGranular reports whether the op has one task per class (D = -1)
// rather than one per (class, d) cell.
func (op Op) classGranular() bool { return op == OpSurvey }

// ParseOp validates an op name.
func ParseOp(s string) (Op, error) {
	switch Op(s) {
	case OpClassify, OpSurvey, OpDegrees, OpWiener:
		return Op(s), nil
	}
	return "", fmt.Errorf("fabric: unknown op %q (want classify|survey|degrees|wiener)", s)
}

// Spec defines one fabric run: the workload and the grid bounds. The
// canonical JSON encoding of the Spec is written into the ledger header,
// so a ledger can only ever be resumed against the grid it records.
type Spec struct {
	Op     Op     `json:"op"`
	MinLen int    `json:"minLen"`
	MaxLen int    `json:"maxLen"`
	MinD   int    `json:"minD"`
	MaxD   int    `json:"maxD"`
	Method string `json:"method"`
}

// Normalize validates sp and fills defaults (MinLen/MinD floors, exact
// method). The returned Spec is the canonical form bound into ledgers.
func (sp Spec) Normalize() (Spec, error) {
	if _, err := ParseOp(string(sp.Op)); err != nil {
		return sp, err
	}
	if sp.MinLen < 1 {
		sp.MinLen = 1
	}
	if sp.MinD < 1 {
		sp.MinD = 1
	}
	if sp.MaxLen < sp.MinLen {
		return sp, fmt.Errorf("fabric: MaxLen %d < MinLen %d", sp.MaxLen, sp.MinLen)
	}
	if sp.MaxLen > bitstr.MaxLen {
		return sp, fmt.Errorf("fabric: MaxLen %d exceeds %d", sp.MaxLen, bitstr.MaxLen)
	}
	if sp.MaxD < sp.MinD {
		return sp, fmt.Errorf("fabric: MaxD %d < MinD %d", sp.MaxD, sp.MinD)
	}
	if sp.Method == "" {
		sp.Method = core.MethodExact.String()
	}
	if _, err := core.ParseMethod(sp.Method); err != nil {
		return sp, err
	}
	switch sp.Op {
	case OpClassify, OpSurvey, OpWiener:
		if sp.MaxD > core.MaxBuildDim {
			return sp, fmt.Errorf("fabric: op %s builds explicit cubes, MaxD %d exceeds %d", sp.Op, sp.MaxD, core.MaxBuildDim)
		}
	case OpDegrees:
		if sp.MaxD > bitstr.MaxLen {
			return sp, fmt.Errorf("fabric: MaxD %d exceeds %d", sp.MaxD, bitstr.MaxLen)
		}
	}
	return sp, nil
}

func (sp Spec) method() core.Method {
	m, _ := core.ParseMethod(sp.Method)
	return m
}

// CellRef identifies one unit of fabric work. I is the cell's position in
// the deterministic grid order (classes shortest first then by packed
// value, d ascending within a class) and is the identity the ledger
// dedupes on; F is the canonical class representative; D is -1 for
// class-granular ops.
type CellRef struct {
	I int    `json:"i"`
	F string `json:"f"`
	D int    `json:"d"`
}

// Cells expands the spec into its full cell list in grid order. The
// expansion is the single source of truth for cell identity: the
// coordinator, the workers and the oracle all index the same list.
func (sp Spec) Cells() []CellRef {
	var out []CellRef
	for _, cl := range core.Classes(sp.MinLen, sp.MaxLen) {
		if sp.Op.classGranular() {
			out = append(out, CellRef{I: len(out), F: cl.Rep.String(), D: -1})
			continue
		}
		for d := sp.MinD; d <= sp.MaxD; d++ {
			out = append(out, CellRef{I: len(out), F: cl.Rep.String(), D: d})
		}
	}
	return out
}

// Record is the ledger payload envelope of one completed cell: its grid
// identity plus the op-specific value. Payload bytes are the canonical
// json.Marshal of this struct, so two computations of the same cell are
// byte-identical.
type Record struct {
	I         int             `json:"i"`
	F         string          `json:"f"`
	ClassSize int             `json:"classSize"`
	D         int             `json:"d"`
	V         json.RawMessage `json:"v"`
}

// ClassifyValue is OpClassify's per-cell value (the /v1/sweep/classify
// cell shape without the class bookkeeping).
type ClassifyValue struct {
	Isometric   bool   `json:"isometric"`
	U           string `json:"u,omitempty"`
	V           string `json:"v,omitempty"`
	CubeDist    int32  `json:"cubeDist,omitempty"`
	HammingDist int32  `json:"hammingDist,omitempty"`
}

// SurveyValue is OpSurvey's per-class value: the first non-isometric
// dimension (0 = good up to MaxD) and the paper's verdict.
type SurveyValue struct {
	FirstFail int    `json:"firstFail"`
	Theory    string `json:"theory"`
}

// DegreesValue is OpDegrees' per-cell value. Order is a decimal string:
// implicit-backend orders reach 2^62.
type DegreesValue struct {
	Order  string  `json:"order"`
	MinDeg int     `json:"minDeg"`
	MaxDeg int     `json:"maxDeg"`
	Dist   []int64 `json:"dist"`
}

// WienerValue is OpWiener's per-cell value; Wiener indices are decimal
// strings (they overflow int64 quickly).
type WienerValue struct {
	Order         string  `json:"order"`
	Connected     bool    `json:"connected"`
	Wiener        string  `json:"wiener"`
	WienerHamming string  `json:"wienerHamming"`
	Match         bool    `json:"match"`
	MeanDist      float64 `json:"meanDist"`
}

// ComputeCell computes one cell's payload bytes. It is the one compute
// path of the whole fabric: local workers, remote gfc-serve hosts and
// the single-process oracle all call it, so a cell's bytes cannot depend
// on where it ran.
func ComputeCell(ctx context.Context, s *core.Scratch, sp Spec, c CellRef) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f, err := bitstr.Parse(c.F)
	if err != nil {
		return nil, fmt.Errorf("fabric: cell %d: %w", c.I, err)
	}
	cl := core.ClassOf(f)
	if cl.Rep != f {
		return nil, fmt.Errorf("fabric: cell %d factor %s is not a canonical class representative", c.I, c.F)
	}
	var v any
	switch sp.Op {
	case OpClassify:
		cell := core.ClassifyCell(ctx, s, cl, c.D, sp.method())
		cv := ClassifyValue{Isometric: cell.Isometric}
		if cell.Witness != nil {
			cv.U = cell.Witness.U.String()
			cv.V = cell.Witness.V.String()
			cv.CubeDist = cell.Witness.CubeDist
			cv.HammingDist = cell.Witness.HammingDist
		}
		v = cv
	case OpSurvey:
		sv := SurveyValue{Theory: "-"}
		start := cl.Rep.Len() + 1
		if sp.MinD > start {
			start = sp.MinD
		}
		for d := start; d <= sp.MaxD; d++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if cell := core.ClassifyCell(ctx, s, cl, d, sp.method()); !cell.Isometric {
				sv.FirstFail = d
				break
			}
		}
		if res := core.Classify(cl.Rep, sp.MaxD); res.Verdict != core.Unknown {
			sv.Theory = res.Reason
		}
		v = sv
	case OpDegrees:
		im := core.NewImplicit(c.D, cl.Rep)
		dv := DegreesValue{Order: strconv.FormatInt(im.Order(), 10), Dist: im.DegreeDistribution()}
		dv.MinDeg, dv.MaxDeg = -1, 0
		for k, n := range dv.Dist {
			if n == 0 {
				continue
			}
			if dv.MinDeg < 0 {
				dv.MinDeg = k
			}
			dv.MaxDeg = k
		}
		if dv.MinDeg < 0 {
			dv.MinDeg = 0
		}
		v = dv
	case OpWiener:
		cube := s.Cube(ctx, c.D, cl.Rep)
		wv := WienerValue{Order: strconv.FormatInt(cube.Order(), 10)}
		exact, connected := s.WienerExact(cube)
		hamming := core.WienerHamming(c.D, cl.Rep)
		wv.Connected = connected
		wv.Wiener = exact.String()
		wv.WienerHamming = hamming.String()
		wv.Match = connected && exact.Cmp(hamming) == 0
		switch {
		case !connected:
			wv.MeanDist = -1
		case cube.N() >= 2:
			pairs := float64(cube.N()) * float64(cube.N()-1) / 2
			w, _ := new(big.Float).SetInt(exact).Float64()
			wv.MeanDist = w / pairs
		}
		v = wv
	default:
		return nil, fmt.Errorf("fabric: unknown op %q", sp.Op)
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return json.Marshal(Record{I: c.I, F: c.F, ClassSize: cl.Size, D: c.D, V: raw})
}

// decodeRecord parses payload bytes produced by ComputeCell. The V field
// is kept raw, so re-encoding a decoded record reproduces its bytes.
func decodeRecord(payload []byte) (Record, error) {
	var r Record
	if err := json.Unmarshal(payload, &r); err != nil {
		return Record{}, fmt.Errorf("fabric: bad cell record: %w", err)
	}
	return r, nil
}
