package fabric

import (
	"fmt"
	"strings"
	"sync/atomic"

	"gfcube/internal/core"
)

// Counters are the coordinator-side fabric counters, rendered on
// gfc-sweepd's /metrics endpoint and printed in run summaries. Worker-
// side counters live in HostStats and surface on gfc-serve's /metrics.
type Counters struct {
	ShardsTotal       atomic.Uint64 // primary shards planned this run
	ShardsActive      atomic.Uint64 // shards currently under lease
	ShardsRequeued    atomic.Uint64 // shard remainders put back after a failed lease
	LeasesGranted     atomic.Uint64
	LeaseRenewals     atomic.Uint64
	LeaseFailures     atomic.Uint64
	Steals            atomic.Uint64 // shards minted by splitting stragglers
	CellsTotal        atomic.Uint64 // grid size
	CellsDone         atomic.Uint64 // cells recorded in the ledger
	LedgerAppends     atomic.Uint64 // records appended by this process
	DuplicatesDropped atomic.Uint64 // reports of already-recorded cells
	Resumes           atomic.Uint64 // 1 when this run resumed a non-empty ledger
	ResumedCells      atomic.Uint64 // cells inherited from the ledger at start
}

// RenderProm writes the counters in Prometheus text exposition format
// under the gfc_fabric_* namespace (the coordinator's sweep view also
// doubles as the gfc_sweep_* cell counters).
func (c *Counters) RenderProm() string {
	var b strings.Builder
	line := func(name, help, typ string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, typ, name, v)
	}
	line("gfc_sweep_cells_total", "Cells in the sweep grid.", "gauge", c.CellsTotal.Load())
	line("gfc_sweep_cells_completed_total", "Cells recorded in the results ledger.", "counter", c.CellsDone.Load())
	line("gfc_sweep_ledger_appends_total", "Ledger records appended by this process.", "counter", c.LedgerAppends.Load())
	line("gfc_sweep_resumes_total", "Runs resumed from a non-empty ledger.", "counter", c.Resumes.Load())
	line("gfc_sweep_resumed_cells_total", "Cells inherited from the ledger at startup.", "counter", c.ResumedCells.Load())
	line("gfc_fabric_shards_total", "Primary shards planned this run.", "gauge", c.ShardsTotal.Load())
	line("gfc_fabric_active_shards", "Shards currently under lease.", "gauge", c.ShardsActive.Load())
	line("gfc_fabric_shards_requeued_total", "Shard remainders requeued after failed leases.", "counter", c.ShardsRequeued.Load())
	line("gfc_fabric_leases_granted_total", "Leases granted to workers.", "counter", c.LeasesGranted.Load())
	line("gfc_fabric_lease_renewals_total", "Lease renewals sent to workers.", "counter", c.LeaseRenewals.Load())
	line("gfc_fabric_lease_failures_total", "Lease attempts or report streams that failed.", "counter", c.LeaseFailures.Load())
	line("gfc_fabric_steals_total", "Shards minted by stealing straggler tails.", "counter", c.Steals.Load())
	line("gfc_fabric_duplicate_cells_dropped_total", "Reported cells dropped because the ledger already held them.", "counter", c.DuplicatesDropped.Load())
	// Column-cache effectiveness of the in-process sweep workers: how many
	// cube constructions were served off a cached class column versus
	// rebuilt from scratch (process-wide, see core.ColumnCounters).
	reuse, rebuild := core.ColumnCounters()
	line("gfc_sweep_column_reuse_total", "Cube constructions served incrementally off a cached class column.", "counter", reuse)
	line("gfc_sweep_column_rebuild_total", "Cube constructions rebuilt from scratch (cold builder, new factor or dimension jump).", "counter", rebuild)
	return b.String()
}

// Summary is a one-line human rendering for run logs.
func (c *Counters) Summary() string {
	return fmt.Sprintf("cells %d/%d, shards %d (requeued %d, steals %d), leases %d (renewals %d, failures %d), appends %d, dup-dropped %d, resumed %d",
		c.CellsDone.Load(), c.CellsTotal.Load(), c.ShardsTotal.Load(), c.ShardsRequeued.Load(), c.Steals.Load(),
		c.LeasesGranted.Load(), c.LeaseRenewals.Load(), c.LeaseFailures.Load(), c.LedgerAppends.Load(),
		c.DuplicatesDropped.Load(), c.ResumedCells.Load())
}
