package fabric

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Coordinator drives one fabric run: it partitions the grid into
// class-affine shards, leases them to workers, keeps live leases
// renewed, polls completed cells into the ledger (deduplicated by cell
// index, so the ledger never holds a cell twice), requeues the remainder
// of any lease that dies (worker crash, lease expiry, report failure),
// and lets idle workers steal the tails of straggler shards. Because
// every completed cell is chained into the ledger before it counts as
// done, killing the coordinator at any instant loses at most the cells
// in flight — a resumed run recomputes exactly the cells the ledger does
// not hold.
type Coordinator struct {
	sp     Spec
	ledger *Ledger
	opts   Options
	c      *Counters

	mu        sync.Mutex
	done      map[int]bool
	doneCount int
	total     int
	pending   []*Shard
	active    map[string]*activeShard
	unsynced  int
	nonce     int
}

// Options tunes a run. Workers and Ledger are required.
type Options struct {
	// Workers are the lease executors. At least one.
	Workers []Worker
	// Shards is the primary shard-slot count (default
	// max(4, 2×len(Workers))). Class→shard affinity holds per slot
	// count: the same class maps to the same slot in every run that
	// uses the same count.
	Shards int
	// LeaseTTL is how long a lease survives without renewal
	// (default 10s). The coordinator renews at TTL/3.
	LeaseTTL time.Duration
	// Poll is the report-poll and idle-retry interval (default 100ms).
	Poll time.Duration
	// ReportMax bounds cells fetched per report call (default 256).
	ReportMax int
	// StealThreshold is the minimum unrecorded remainder of a straggler
	// worth splitting (default 4 cells).
	StealThreshold int
	// SyncEvery syncs the ledger to stable storage after this many
	// appends (default 32; every append also lands in the kernel
	// immediately — SIGKILL loses nothing, only power loss can).
	SyncEvery int
	// Progress, when non-nil, is called after every recorded cell with
	// (recorded, total). Serialized.
	Progress func(done, total int)
	// Logf, when non-nil, receives coordinator events (lease grants,
	// failures, steals, resume summary).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Shards < 1 {
		o.Shards = 2 * len(o.Workers)
		if o.Shards < 4 {
			o.Shards = 4
		}
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.Poll <= 0 {
		o.Poll = 100 * time.Millisecond
	}
	if o.ReportMax < 1 {
		o.ReportMax = 256
	}
	if o.StealThreshold < 2 {
		o.StealThreshold = 4
	}
	if o.SyncEvery < 1 {
		o.SyncEvery = 32
	}
	return o
}

// activeShard tracks a leased shard for steal decisions.
type activeShard struct {
	shard   *Shard
	worker  string
	stolen  map[int]bool // cell indexes already split off to thieves
	started time.Time
}

// NewCoordinator plans a run over ledger (already created or opened for
// the same spec). Cells the ledger holds are done before the first lease
// is granted — that is all resume is.
func NewCoordinator(sp Spec, ledger *Ledger, opts Options) (*Coordinator, error) {
	sp, err := sp.Normalize()
	if err != nil {
		return nil, err
	}
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("fabric: no workers")
	}
	opts = opts.withDefaults()
	c := &Coordinator{
		sp:     sp,
		ledger: ledger,
		opts:   opts,
		c:      &Counters{},
		done:   make(map[int]bool),
		active: make(map[string]*activeShard),
	}
	cells := sp.Cells()
	c.total = len(cells)
	for _, r := range ledger.Records() {
		if r.I < 0 || r.I >= c.total {
			return nil, fmt.Errorf("fabric: ledger cell index %d outside grid of %d cells", r.I, c.total)
		}
		if !c.done[r.I] {
			c.done[r.I] = true
			c.doneCount++
		}
	}
	if c.doneCount > 0 {
		c.c.Resumes.Add(1)
		c.c.ResumedCells.Add(uint64(c.doneCount))
	}
	remaining := make([]CellRef, 0, c.total-c.doneCount)
	for _, cell := range cells {
		if !c.done[cell.I] {
			remaining = append(remaining, cell)
		}
	}
	// Shards are iso-affine: band-congruent classes share a slot so one
	// worker's scratch sweeps their near-identical columns back to back.
	// Scheduling only — cell identity, compute and ledger bytes are
	// unchanged.
	c.pending = PartitionIso(remaining, opts.Shards, sp.MinD, sp.MaxD)
	c.c.ShardsTotal.Store(uint64(len(c.pending)))
	c.c.CellsTotal.Store(uint64(c.total))
	c.c.CellsDone.Store(uint64(c.doneCount))
	c.logf("grid %s: %d cells, %d already in ledger, %d shards to sweep across %d workers",
		string(sp.Op), c.total, c.doneCount, len(c.pending), len(opts.Workers))
	return c, nil
}

// Counters exposes the run's live counters (for /metrics and summaries).
func (c *Coordinator) Counters() *Counters { return c.c }

// Total returns the grid's cell count.
func (c *Coordinator) Total() int { return c.total }

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// Run drives the sweep until the ledger holds every cell or ctx dies.
// On success the ledger is synced and complete; the result set is
// ResultSet(c.Ledger().Records()).
func (c *Coordinator) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	for i, w := range c.opts.Workers {
		wg.Add(1)
		go func(idx int, w Worker) {
			defer wg.Done()
			c.workerLoop(ctx, w)
		}(i, w)
	}
	wg.Wait()
	c.mu.Lock()
	finished := c.doneCount == c.total
	c.mu.Unlock()
	if err := c.ledger.Sync(); err != nil {
		return err
	}
	if !finished {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fmt.Errorf("fabric: run stopped with %d/%d cells recorded", c.doneCount, c.total)
	}
	return nil
}

// workerLoop feeds one worker shards until the grid is complete.
func (c *Coordinator) workerLoop(ctx context.Context, w Worker) {
	failures := 0
	for {
		if ctx.Err() != nil {
			return
		}
		sh := c.nextShard()
		if sh == nil {
			c.mu.Lock()
			finished := c.doneCount == c.total
			idle := len(c.pending) == 0 && len(c.active) == 0
			c.mu.Unlock()
			if finished {
				return
			}
			if idle {
				// Nothing pending, nothing active, grid incomplete: another
				// worker just requeued, or everything failed — retry.
				time.Sleep(c.opts.Poll)
				continue
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(c.opts.Poll):
			}
			continue
		}
		if err := c.runShard(ctx, w, sh); err != nil {
			failures++
			c.c.LeaseFailures.Add(1)
			c.logf("worker %s shard %s: %v (failure %d)", w.Name(), sh.ID, err, failures)
			// Exponential backoff per worker so a dead remote does not
			// spin; the shard itself was already requeued.
			backoff := c.opts.Poll << uint(min(failures, 5))
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			continue
		}
		failures = 0
	}
}

// nextShard takes a pending shard, or steals a straggler's tail when
// none is pending. Returns nil when there is nothing to do right now.
func (c *Coordinator) nextShard() *Shard {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.pending) > 0 {
		sh := c.pending[0]
		c.pending = c.pending[1:]
		if cells := c.unrecordedLocked(sh.Cells); len(cells) == 0 {
			return nil // fully recorded meanwhile (thief finished it)
		} else if len(cells) != len(sh.Cells) {
			sh = &Shard{ID: sh.ID, Cells: cells, Stolen: sh.Stolen}
		}
		return sh
	}
	return c.stealLocked()
}

// stealLocked splits the tail of the straggler with the most unrecorded,
// unstolen cells. Thieves and victims may compute overlapping cells near
// the split point; the record path keeps the ledger single-copy.
func (c *Coordinator) stealLocked() *Shard {
	var victim *activeShard
	var victimRemainder []CellRef
	for _, a := range c.active {
		var rem []CellRef
		for _, cell := range c.unrecordedLocked(a.shard.Cells) {
			if !a.stolen[cell.I] {
				rem = append(rem, cell)
			}
		}
		if len(rem) >= c.opts.StealThreshold && (victim == nil || len(rem) > len(victimRemainder)) {
			victim, victimRemainder = a, rem
		}
	}
	if victim == nil {
		return nil
	}
	// Take the tail half: the victim's lease computes cells in shard
	// order from the front, so the tail is what it will reach last.
	tail := victimRemainder[len(victimRemainder)/2:]
	for _, cell := range tail {
		victim.stolen[cell.I] = true
	}
	c.nonce++
	c.c.Steals.Add(1)
	sh := &Shard{ID: fmt.Sprintf("%s-steal%d", victim.shard.ID, c.nonce), Cells: tail, Stolen: true}
	c.logf("stealing %d cells from straggler %s (worker %s) as %s", len(tail), victim.shard.ID, victim.worker, sh.ID)
	return sh
}

// unrecordedLocked filters cells to those the ledger does not hold.
func (c *Coordinator) unrecordedLocked(cells []CellRef) []CellRef {
	out := make([]CellRef, 0, len(cells))
	for _, cell := range cells {
		if !c.done[cell.I] {
			out = append(out, cell)
		}
	}
	return out
}

// requeue puts a shard's unrecorded remainder back on the pending queue.
func (c *Coordinator) requeue(sh *Shard) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cells := c.unrecordedLocked(sh.Cells)
	if len(cells) == 0 {
		return
	}
	c.c.ShardsRequeued.Add(1)
	c.pending = append(c.pending, &Shard{ID: sh.ID, Cells: cells, Stolen: sh.Stolen})
}

// record appends one completed cell to the ledger unless it is already
// there (a stolen/requeued overlap). This is the single write path: the
// ledger mutex is c.mu, appends are chained in arrival order, and the
// dedupe here is what guarantees zero duplicate cells.
func (c *Coordinator) record(rec Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rec.I < 0 || rec.I >= c.total {
		return fmt.Errorf("fabric: worker reported cell index %d outside grid of %d cells", rec.I, c.total)
	}
	if c.done[rec.I] {
		c.c.DuplicatesDropped.Add(1)
		return nil
	}
	if err := c.ledger.Append(rec); err != nil {
		return err
	}
	c.done[rec.I] = true
	c.doneCount++
	c.c.CellsDone.Store(uint64(c.doneCount))
	c.c.LedgerAppends.Add(1)
	c.unsynced++
	if c.unsynced >= c.opts.SyncEvery {
		c.unsynced = 0
		if err := c.ledger.Sync(); err != nil {
			return err
		}
	}
	if c.opts.Progress != nil {
		c.opts.Progress(c.doneCount, c.total)
	}
	return nil
}

// runShard leases sh on w and pumps reports into the ledger until the
// lease completes, fails, or ctx dies. Any early exit requeues the
// shard's unrecorded remainder.
func (c *Coordinator) runShard(ctx context.Context, w Worker, sh *Shard) error {
	c.mu.Lock()
	c.nonce++
	leaseID := fmt.Sprintf("%s.%s.%d", sh.ID, w.Name(), c.nonce)
	a := &activeShard{shard: sh, worker: w.Name(), stolen: make(map[int]bool), started: time.Now()}
	c.active[leaseID] = a
	c.c.ShardsActive.Store(uint64(len(c.active)))
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.active, leaseID)
		c.c.ShardsActive.Store(uint64(len(c.active)))
		c.mu.Unlock()
	}()

	state, err := w.Start(ctx, c.sp, leaseID, sh.Cells, c.opts.LeaseTTL)
	if err != nil {
		c.requeue(sh)
		return fmt.Errorf("lease: %w", err)
	}
	c.c.LeasesGranted.Add(1)
	c.logf("leased %s (%d cells) to %s until %s", sh.ID, state.Total, w.Name(), state.Deadline.Format(time.RFC3339))

	from := 0
	lastRenew := time.Now()
	for {
		if err := ctx.Err(); err != nil {
			_ = w.Cancel(context.WithoutCancel(ctx), leaseID)
			c.requeue(sh)
			return err
		}
		chunk, err := w.Report(ctx, leaseID, from, c.opts.ReportMax)
		if err != nil {
			c.requeue(sh)
			return fmt.Errorf("report: %w", err)
		}
		for _, payload := range chunk.Payloads {
			rec, err := decodeRecord(payload)
			if err != nil {
				c.requeue(sh)
				return err
			}
			if err := c.record(rec); err != nil {
				c.requeue(sh)
				return err
			}
		}
		from = chunk.Next
		if chunk.Done && len(chunk.Payloads) == 0 {
			if chunk.Err != "" {
				// Partial lease (expiry, cancellation, failed cell): the
				// cells it did finish are recorded; requeue the rest.
				c.requeue(sh)
				c.logf("lease %s on %s ended early after %d cells: %s", sh.ID, w.Name(), from, chunk.Err)
				return nil
			}
			return nil
		}
		if time.Since(lastRenew) > c.opts.LeaseTTL/3 {
			if _, err := w.Start(ctx, c.sp, leaseID, sh.Cells, c.opts.LeaseTTL); err != nil {
				c.requeue(sh)
				return fmt.Errorf("renew: %w", err)
			}
			c.c.LeaseRenewals.Add(1)
			lastRenew = time.Now()
		}
		if len(chunk.Payloads) == 0 {
			select {
			case <-ctx.Done():
			case <-time.After(c.opts.Poll):
			}
		}
	}
}

// PendingSummary describes what is left to do (for -verify and logs).
func (c *Coordinator) PendingSummary() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	missing := make([]int, 0)
	for i := 0; i < c.total && len(missing) < 8; i++ {
		if !c.done[i] {
			missing = append(missing, i)
		}
	}
	sort.Ints(missing)
	return fmt.Sprintf("%d/%d cells recorded, first missing %v", c.doneCount, c.total, missing)
}
