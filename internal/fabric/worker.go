package fabric

import (
	"context"
	"time"
)

// Worker is the coordinator's view of one lease executor. LocalWorker
// adapts an in-process Host; RemoteWorker (http.go) speaks the same
// protocol to a gfc-serve instance. The coordinator never cares which —
// shards, leases, stealing and resume behave identically.
type Worker interface {
	// Name labels the worker in logs and lease IDs.
	Name() string
	// Start grants or renews a lease on the worker.
	Start(ctx context.Context, sp Spec, leaseID string, cells []CellRef, ttl time.Duration) (LeaseState, error)
	// Report fetches completed cells from the cursor.
	Report(ctx context.Context, leaseID string, from, max int) (ReportChunk, error)
	// Cancel revokes a lease (work-stealing cleanup, shutdown).
	Cancel(ctx context.Context, leaseID string) error
}

// LocalWorker runs leases on an in-process Host.
type LocalWorker struct {
	name string
	host *Host
}

// NewLocalWorker wraps host as a coordinator-attachable worker.
func NewLocalWorker(name string, host *Host) *LocalWorker {
	return &LocalWorker{name: name, host: host}
}

// Name implements Worker.
func (w *LocalWorker) Name() string { return w.name }

// Host exposes the underlying host (for stats).
func (w *LocalWorker) Host() *Host { return w.host }

// Start implements Worker.
func (w *LocalWorker) Start(_ context.Context, sp Spec, leaseID string, cells []CellRef, ttl time.Duration) (LeaseState, error) {
	return w.host.Start(sp, leaseID, cells, ttl)
}

// Report implements Worker.
func (w *LocalWorker) Report(_ context.Context, leaseID string, from, max int) (ReportChunk, error) {
	return w.host.Report(leaseID, from, max)
}

// Cancel implements Worker.
func (w *LocalWorker) Cancel(_ context.Context, leaseID string) error {
	return w.host.Cancel(leaseID)
}
