package fabric

import (
	"testing"
)

func TestPartitionCoversEveryCellOnce(t *testing.T) {
	sp := testSpec(t)
	cells := sp.Cells()
	for _, n := range []int{1, 2, 3, 7} {
		shards := Partition(cells, n)
		seen := make(map[int]bool)
		for _, sh := range shards {
			if len(sh.Cells) == 0 {
				t.Fatalf("n=%d: empty shard %s", n, sh.ID)
			}
			for _, c := range sh.Cells {
				if seen[c.I] {
					t.Fatalf("n=%d: cell %d in two shards", n, c.I)
				}
				seen[c.I] = true
			}
		}
		if len(seen) != len(cells) {
			t.Fatalf("n=%d: %d cells covered, want %d", n, len(seen), len(cells))
		}
	}
}

func TestPartitionClassAffinity(t *testing.T) {
	sp := testSpec(t)
	cells := sp.Cells()
	shards := Partition(cells, 3)
	classShardOf := make(map[string]string)
	for _, sh := range shards {
		for _, c := range sh.Cells {
			if prev, ok := classShardOf[c.F]; ok && prev != sh.ID {
				t.Fatalf("class %q split across shards %s and %s", c.F, prev, sh.ID)
			}
			classShardOf[c.F] = sh.ID
		}
	}
}

func TestPartitionStableAcrossRuns(t *testing.T) {
	// The same class must land on the same shard slot every time — that
	// is what makes interrupted runs re-dispatch deterministically.
	sp := testSpec(t)
	cells := sp.Cells()
	a := Partition(cells, 4)
	b := Partition(cells, 4)
	if len(a) != len(b) {
		t.Fatalf("partition size changed: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || len(a[i].Cells) != len(b[i].Cells) {
			t.Fatalf("shard %d differs between identical runs", i)
		}
		for j := range a[i].Cells {
			if a[i].Cells[j] != b[i].Cells[j] {
				t.Fatalf("shard %s cell %d differs between identical runs", a[i].ID, j)
			}
		}
	}
}

func TestPartitionIsoGroupAffinity(t *testing.T) {
	// Iso-affine shards must (a) cover every cell exactly once, (b) keep
	// band-congruent classes on one shard, and (c) stay stable across
	// runs, like the plain partition.
	sp := testSpec(t)
	cells := sp.Cells()
	for _, n := range []int{1, 3, 7} {
		shards := PartitionIso(cells, n, sp.MinD, sp.MaxD)
		seen := make(map[int]bool)
		classShardOf := make(map[string]string)
		for _, sh := range shards {
			for _, c := range sh.Cells {
				if seen[c.I] {
					t.Fatalf("n=%d: cell %d in two shards", n, c.I)
				}
				seen[c.I] = true
				if prev, ok := classShardOf[c.F]; ok && prev != sh.ID {
					t.Fatalf("n=%d: class %q split across shards %s and %s", n, c.F, prev, sh.ID)
				}
				classShardOf[c.F] = sh.ID
			}
		}
		if len(seen) != len(cells) {
			t.Fatalf("n=%d: %d cells covered, want %d", n, len(seen), len(cells))
		}
	}
	// Known band-congruent pair on the |f| <= 5 census: 00001 and 00011
	// merge for every d <= 6 but split at d = 7, so over the band [1, 6]
	// they must share a shard.
	wide, err := Spec{Op: OpClassify, MinLen: 1, MaxLen: 5, MinD: 1, MaxD: 6}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	shards := PartitionIso(wide.Cells(), 7, wide.MinD, wide.MaxD)
	shardOf := make(map[string]string)
	for _, sh := range shards {
		for _, c := range sh.Cells {
			shardOf[c.F] = sh.ID
		}
	}
	if a, b := shardOf["00001"], shardOf["00011"]; a == "" || a != b {
		t.Fatalf("band-congruent classes 00001 (%s) and 00011 (%s) on different shards", a, b)
	}
}

func TestClassShardInRange(t *testing.T) {
	for _, rep := range []string{"1", "11", "101", "0", "10"} {
		for _, n := range []int{1, 2, 5, 16} {
			if s := classShard(rep, n); s < 0 || s >= n {
				t.Fatalf("classShard(%q, %d) = %d out of range", rep, n, s)
			}
		}
	}
}
