package fabric

import (
	"context"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
	"gfcube/internal/sweep"
)

// Oracle computes the spec's full grid in-process on the sweep engine
// and returns the canonical result set — the byte-reproducibility target
// every fabric run is gated against. It shares ComputeCell with the
// workers, so "byte-identical to the oracle" tests orchestration
// (sharding, leases, stealing, resume, dedupe), not numeric luck.
func Oracle(ctx context.Context, sp Spec, workers int, provider core.Provider) ([]byte, error) {
	sp, err := sp.Normalize()
	if err != nil {
		return nil, err
	}
	records, err := computeCells(ctx, sp, sp.Cells(), sweep.Options{Workers: workers, Provider: provider})
	if err != nil {
		return nil, err
	}
	return ResultSet(records)
}

// computeCells fans refs across the sweep engine and returns their
// decoded records in ref order. Any cell error aborts the batch.
func computeCells(ctx context.Context, sp Spec, refs []CellRef, opts sweep.Options) ([]Record, error) {
	tasks := make([]sweep.Task, len(refs))
	for i, c := range refs {
		f, err := bitstr.Parse(c.F)
		if err != nil {
			return nil, err
		}
		tasks[i] = sweep.Task{Class: core.ClassOf(f), D: c.D}
	}
	results, err := sweep.Run(ctx, tasks, func(ctx context.Context, s *core.Scratch, t sweep.Task) (any, error) {
		return ComputeCell(ctx, s, sp, refs[t.Seq])
	}, opts)
	if err != nil {
		return nil, err
	}
	out := make([]Record, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		rec, err := decodeRecord(r.Value.([]byte))
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}
