package fabric

import (
	"context"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gfcube/internal/core"
)

func testSpec(t *testing.T) Spec {
	t.Helper()
	sp, err := Spec{Op: OpClassify, MinLen: 1, MaxLen: 2, MinD: 1, MaxD: 4}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// fillLedger computes every cell of sp serially and appends it, returning
// the ledger path.
func fillLedger(t *testing.T, sp Spec) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.gfcl")
	l, err := CreateLedger(path, sp)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewScratch()
	for _, c := range sp.Cells() {
		payload, err := ComputeCell(context.Background(), s, sp, c)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLedgerRoundTrip(t *testing.T) {
	sp := testSpec(t)
	path := fillLedger(t, sp)
	scan, err := VerifyLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Damaged {
		t.Fatalf("clean ledger reported damaged: %s", scan.DamageReason)
	}
	if want := len(sp.Cells()); len(scan.Records) != want {
		t.Fatalf("got %d records, want %d", len(scan.Records), want)
	}
	if scan.Duplicates != 0 {
		t.Fatalf("clean ledger reports %d duplicates", scan.Duplicates)
	}
	if scan.Spec != sp {
		t.Fatalf("scanned spec %+v, want %+v", scan.Spec, sp)
	}
	// Reopening for append preserves every record and trims nothing.
	l, err := OpenLedger(path, &sp)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Trimmed() != 0 {
		t.Fatalf("clean reopen trimmed %d bytes", l.Trimmed())
	}
	if len(l.Records()) != len(scan.Records) {
		t.Fatalf("reopen lost records: %d vs %d", len(l.Records()), len(scan.Records))
	}
}

func TestLedgerResultSetMatchesOracle(t *testing.T) {
	sp := testSpec(t)
	path := fillLedger(t, sp)
	scan, err := VerifyLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ResultSet(scan.Records)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Oracle(context.Background(), sp, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("ledger result set differs from oracle:\n%s\nvs\n%s", got, want)
	}
}

func TestLedgerSpecMismatch(t *testing.T) {
	sp := testSpec(t)
	path := fillLedger(t, sp)
	other := sp
	other.MaxD = 5
	if _, err := OpenLedger(path, &other); !errors.Is(err, ErrLedgerCorrupt) {
		t.Fatalf("open with mismatched spec: err = %v, want ErrLedgerCorrupt", err)
	}
	// nil spec accepts whatever the header declares.
	l, err := OpenLedger(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Spec() != sp {
		t.Fatalf("nil-spec open read %+v, want %+v", l.Spec(), sp)
	}
}

// ledgerLayout returns the byte offsets of every record in the file, so
// corruption tests can aim precisely.
func ledgerLayout(t *testing.T, data []byte) []int64 {
	t.Helper()
	specLen := binary.LittleEndian.Uint32(data[12:])
	off := int64(ledgerHdrSize + int(specLen))
	var offsets []int64
	for off < int64(len(data)) {
		offsets = append(offsets, off)
		plen := binary.LittleEndian.Uint32(data[off+4:])
		off += int64(recordHdrSize) + int64(plen)
	}
	return offsets
}

// corruptResume damages the ledger bytes with mutate, then asserts that
// (a) the scan stops at wantValid records without a header error, and
// (b) a resumed run over the damaged ledger recomputes forward to a
// result set byte-identical to the single-process oracle.
func corruptResume(t *testing.T, mutate func(data []byte, offsets []int64) []byte, wantValid func(records int) bool) {
	t.Helper()
	sp := testSpec(t)
	path := fillLedger(t, sp)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	offsets := ledgerLayout(t, data)
	if err := os.WriteFile(path, mutate(append([]byte(nil), data...), offsets), 0o644); err != nil {
		t.Fatal(err)
	}

	scan, err := VerifyLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if !scan.Damaged {
		t.Fatal("damaged ledger not reported as damaged")
	}
	total := len(sp.Cells())
	if len(scan.Records) >= total || !wantValid(len(scan.Records)) {
		t.Fatalf("valid prefix has %d records (total %d), damage: %s", len(scan.Records), total, scan.DamageReason)
	}

	// Resume: reopen (truncating the damage) and drive a local fabric run
	// to completion.
	l, err := OpenLedger(path, &sp)
	if err != nil {
		t.Fatal(err)
	}
	if l.Trimmed() == 0 {
		t.Fatal("resume trimmed nothing despite damage")
	}
	host := NewHost(HostConfig{Workers: 2})
	defer host.Close()
	co, err := NewCoordinator(sp, l, Options{Workers: []Worker{NewLocalWorker("w0", host)}})
	if err != nil {
		t.Fatal(err)
	}
	if co.Counters().Resumes.Load() != 1 || co.Counters().ResumedCells.Load() != uint64(len(scan.Records)) {
		t.Fatalf("resume counters: resumes=%d resumedCells=%d, want 1/%d",
			co.Counters().Resumes.Load(), co.Counters().ResumedCells.Load(), len(scan.Records))
	}
	if err := co.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := ResultSet(l.Records())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	want, err := Oracle(context.Background(), sp, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("resumed result set differs from oracle")
	}
	// The healed ledger verifies clean with zero duplicates.
	scan, err = VerifyLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Damaged || scan.Duplicates != 0 || len(scan.Records) != total {
		t.Fatalf("healed ledger: damaged=%v dups=%d records=%d/%d", scan.Damaged, scan.Duplicates, len(scan.Records), total)
	}
}

func TestLedgerCorruptionTornTail(t *testing.T) {
	corruptResume(t, func(data []byte, offsets []int64) []byte {
		// Cut mid-way through the last record's payload.
		last := offsets[len(offsets)-1]
		return data[:last+recordHdrSize+2]
	}, func(records int) bool { return records > 0 })
}

func TestLedgerCorruptionFlippedMiddleByte(t *testing.T) {
	corruptResume(t, func(data []byte, offsets []int64) []byte {
		// Flip one payload byte of a middle record: its checksum fails and
		// the prefix ends right before it.
		mid := offsets[len(offsets)/2]
		data[mid+recordHdrSize] ^= 0x01
		return data
	}, func(records int) bool { return records > 0 })
}

func TestLedgerCorruptionWrongChainHash(t *testing.T) {
	corruptResume(t, func(data []byte, offsets []int64) []byte {
		// Rewrite a middle record's chain hash: payload and checksum stay
		// consistent, but the link to the predecessor breaks — the
		// tamper-evidence property, not just bit rot.
		mid := offsets[len(offsets)/2]
		data[mid+48] ^= 0xFF
		return data
	}, func(records int) bool { return records > 0 })
}

func TestLedgerHeaderCorruptionFailsClosed(t *testing.T) {
	sp := testSpec(t)
	path := fillLedger(t, sp)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"bad magic":     func(d []byte) []byte { d[0] ^= 0xFF; return d },
		"bad version":   func(d []byte) []byte { d[8] = 99; return d },
		"spec checksum": func(d []byte) []byte { d[ledgerHdrSize] ^= 0x01; return d },
		"truncated":     func(d []byte) []byte { return d[:10] },
	} {
		if err := os.WriteFile(path, mutate(append([]byte(nil), data...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyLedger(path); !errors.Is(err, ErrLedgerCorrupt) {
			t.Errorf("%s: err = %v, want ErrLedgerCorrupt", name, err)
		}
	}
}

func TestCreateLedgerRefusesExisting(t *testing.T) {
	sp := testSpec(t)
	path := fillLedger(t, sp)
	if _, err := CreateLedger(path, sp); err == nil {
		t.Fatal("CreateLedger overwrote an existing ledger")
	}
}
