package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Wire types of the work-lease protocol. A gfc-serve instance in worker
// mode exposes three routes:
//
//	POST   /v1/fabric/lease            grant or renew a lease
//	GET    /v1/fabric/report?lease=ID&from=K&max=M
//	DELETE /v1/fabric/lease?lease=ID   revoke a lease
//
// Errors use the service's v1 envelope; the remote client maps 404 on
// report back to ErrLeaseNotFound so the coordinator's recovery logic is
// transport-agnostic.

// LeaseRequest is the POST /v1/fabric/lease body.
type LeaseRequest struct {
	LeaseID string    `json:"lease"`
	TTLMs   int64     `json:"ttl_ms"`
	Spec    Spec      `json:"spec"`
	Cells   []CellRef `json:"cells"`
}

// LeaseResponse mirrors LeaseState on the wire.
type LeaseResponse struct {
	LeaseID    string `json:"lease"`
	Total      int    `json:"total"`
	Renewed    bool   `json:"renewed"`
	DeadlineMs int64  `json:"deadline_unix_ms"`
}

// ReportWireCell is one completed cell on the wire; Payload is the
// canonical Record encoding, shipped raw so bytes survive the transport
// untouched.
type ReportWireCell struct {
	Payload json.RawMessage `json:"payload"`
}

// ReportResponse mirrors ReportChunk on the wire.
type ReportResponse struct {
	LeaseID string           `json:"lease"`
	From    int              `json:"from"`
	Cells   []ReportWireCell `json:"cells"`
	Next    int              `json:"next"`
	Total   int              `json:"total"`
	Done    bool             `json:"done"`
	Err     string           `json:"error,omitempty"`
}

// CancelResponse is the DELETE /v1/fabric/lease reply.
type CancelResponse struct {
	LeaseID  string `json:"lease"`
	Canceled bool   `json:"canceled"`
}

// RemoteWorker leases shards to a gfc-serve instance. Transient
// transport failures (connection refused while a worker restarts, 5xx)
// are retried with exponential backoff before the coordinator sees an
// error and requeues the shard.
type RemoteWorker struct {
	name    string
	base    string
	client  *http.Client
	retries int
	backoff time.Duration
}

// NewRemoteWorker builds a client for the worker at base
// (e.g. "http://127.0.0.1:8081"). retries <= 0 defaults to 3 attempts;
// backoff <= 0 defaults to 100ms, doubling per attempt.
func NewRemoteWorker(name, base string, client *http.Client, retries int, backoff time.Duration) *RemoteWorker {
	if client == nil {
		client = &http.Client{Timeout: 15 * time.Second}
	}
	if retries <= 0 {
		retries = 3
	}
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	return &RemoteWorker{name: name, base: base, client: client, retries: retries, backoff: backoff}
}

// Name implements Worker.
func (w *RemoteWorker) Name() string { return w.name }

// retryable reports whether an HTTP status is worth retrying.
func retryable(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

// do runs one HTTP exchange with retry/backoff, decoding a 2xx body
// into out. Non-retryable statuses return an error carrying the body.
func (w *RemoteWorker) do(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	delay := w.backoff
	for attempt := 0; attempt < w.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
			delay *= 2
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, w.base+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := w.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			if out == nil {
				return nil
			}
			return json.Unmarshal(data, out)
		case resp.StatusCode == http.StatusNotFound:
			return fmt.Errorf("%w: %s", ErrLeaseNotFound, strings1024(data))
		case retryable(resp.StatusCode):
			lastErr = fmt.Errorf("fabric: worker %s: HTTP %d: %s", w.name, resp.StatusCode, strings1024(data))
			continue
		default:
			return fmt.Errorf("fabric: worker %s: HTTP %d: %s", w.name, resp.StatusCode, strings1024(data))
		}
	}
	return fmt.Errorf("fabric: worker %s unreachable after %d attempts: %w", w.name, w.retries, lastErr)
}

func strings1024(b []byte) string {
	if len(b) > 1024 {
		b = b[:1024]
	}
	return string(bytes.TrimSpace(b))
}

// Start implements Worker.
func (w *RemoteWorker) Start(ctx context.Context, sp Spec, leaseID string, cells []CellRef, ttl time.Duration) (LeaseState, error) {
	body, err := json.Marshal(LeaseRequest{LeaseID: leaseID, TTLMs: ttl.Milliseconds(), Spec: sp, Cells: cells})
	if err != nil {
		return LeaseState{}, err
	}
	var resp LeaseResponse
	if err := w.do(ctx, http.MethodPost, "/v1/fabric/lease", body, &resp); err != nil {
		return LeaseState{}, err
	}
	return LeaseState{
		LeaseID:  resp.LeaseID,
		Total:    resp.Total,
		Renewed:  resp.Renewed,
		Deadline: time.UnixMilli(resp.DeadlineMs),
	}, nil
}

// Report implements Worker.
func (w *RemoteWorker) Report(ctx context.Context, leaseID string, from, max int) (ReportChunk, error) {
	q := url.Values{}
	q.Set("lease", leaseID)
	q.Set("from", strconv.Itoa(from))
	if max > 0 {
		q.Set("max", strconv.Itoa(max))
	}
	var resp ReportResponse
	if err := w.do(ctx, http.MethodGet, "/v1/fabric/report?"+q.Encode(), nil, &resp); err != nil {
		return ReportChunk{}, err
	}
	chunk := ReportChunk{
		LeaseID: resp.LeaseID,
		From:    resp.From,
		Next:    resp.Next,
		Total:   resp.Total,
		Done:    resp.Done,
		Err:     resp.Err,
	}
	for _, c := range resp.Cells {
		chunk.Payloads = append(chunk.Payloads, []byte(c.Payload))
	}
	return chunk, nil
}

// Cancel implements Worker. A missing lease is success: the goal state
// (no lease) already holds.
func (w *RemoteWorker) Cancel(ctx context.Context, leaseID string) error {
	err := w.do(ctx, http.MethodDelete, "/v1/fabric/lease?lease="+url.QueryEscape(leaseID), nil, nil)
	if errors.Is(err, ErrLeaseNotFound) {
		return nil
	}
	return err
}
