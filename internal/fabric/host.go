package fabric

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
	"gfcube/internal/sweep"
)

// Host executes shard leases inside a worker process. gfc-serve mounts
// one behind its /v1/fabric endpoints; gfc-sweepd's in-process workers
// call the same methods directly — the protocol is identical either way,
// so kill-and-resume behavior does not depend on the transport.
//
// A lease is a bounded obligation: the host computes the leased cells
// until done or until the lease deadline fires, whichever comes first.
// The coordinator keeps a live lease alive by renewing it (an idempotent
// re-grant of the same lease ID); a lease whose coordinator died simply
// expires — its context is canceled, compute stops, and the lease is
// garbage-collected after a grace period. Completed cell payloads
// accumulate in order and are fetched incrementally by cursor, so a
// report poll never re-ships what the coordinator already has.
type Host struct {
	cfg HostConfig

	mu     sync.Mutex
	leases map[string]*lease

	leasesTotal   atomic.Uint64
	renewalsTotal atomic.Uint64
	cellsTotal    atomic.Uint64
	reportsTotal  atomic.Uint64
	cancelsTotal  atomic.Uint64
	expiredTotal  atomic.Uint64
}

// HostConfig tunes a Host; the zero value is usable.
type HostConfig struct {
	// Workers bounds the sweep workers each lease computes with
	// (default 1: fabric parallelism comes from leasing many shards).
	Workers int
	// MaxCells bounds the cells of one lease (default 65536).
	MaxCells int
	// MaxLeases bounds concurrently live leases (default 16).
	MaxLeases int
	// Provider, when non-nil, resolves cube construction through the
	// artifact store (compute-or-load) on every lease worker.
	Provider core.Provider
	// CellDelay pauses compute before every cell. It exists for fault
	// injection: the fabric-gate CI job uses it to stretch a small grid
	// long enough to SIGKILL processes mid-sweep deterministically.
	CellDelay time.Duration
	// ExpiredGrace keeps an expired or finished lease fetchable before
	// garbage collection (default 1m).
	ExpiredGrace time.Duration
}

func (c HostConfig) withDefaults() HostConfig {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.MaxCells < 1 {
		c.MaxCells = 65536
	}
	if c.MaxLeases < 1 {
		c.MaxLeases = 16
	}
	if c.ExpiredGrace <= 0 {
		c.ExpiredGrace = time.Minute
	}
	return c
}

// lease is one in-flight (or recently finished) shard execution.
type lease struct {
	id       string
	specJSON string
	total    int
	cancel   context.CancelFunc
	timer    *time.Timer

	mu       sync.Mutex
	deadline time.Time
	results  [][]byte // payloads in shard-cell order
	done     bool
	errMsg   string
	gcAt     time.Time // zero while running
}

// Lease errors the HTTP layer maps onto the v1 envelope.
var (
	// ErrLeaseNotFound: no live lease with that ID (expired, canceled,
	// or never granted).
	ErrLeaseNotFound = errors.New("fabric: lease not found")
	// ErrLeaseConflict: the ID is live with a different spec/cell set.
	ErrLeaseConflict = errors.New("fabric: lease id already in use")
	// ErrHostBusy: the host is at its concurrent-lease cap.
	ErrHostBusy = errors.New("fabric: worker at lease capacity")
)

// NewHost builds a lease host.
func NewHost(cfg HostConfig) *Host {
	return &Host{cfg: cfg.withDefaults(), leases: make(map[string]*lease)}
}

// HostStats is a snapshot of the host counters for /stats and /metrics.
type HostStats struct {
	Active   int    `json:"active"`
	Leases   uint64 `json:"leases"`
	Renewals uint64 `json:"renewals"`
	Cells    uint64 `json:"cells"`
	Reports  uint64 `json:"reports"`
	Cancels  uint64 `json:"cancels"`
	Expired  uint64 `json:"expired"`
}

// Stats snapshots the host counters. Active counts live leases
// (running, not yet garbage-collected ones that finished).
func (h *Host) Stats() HostStats {
	h.mu.Lock()
	active := len(h.leases)
	h.mu.Unlock()
	return HostStats{
		Active:   active,
		Leases:   h.leasesTotal.Load(),
		Renewals: h.renewalsTotal.Load(),
		Cells:    h.cellsTotal.Load(),
		Reports:  h.reportsTotal.Load(),
		Cancels:  h.cancelsTotal.Load(),
		Expired:  h.expiredTotal.Load(),
	}
}

// LeaseState is what Start reports back to the coordinator.
type LeaseState struct {
	LeaseID  string    `json:"lease"`
	Total    int       `json:"total"`
	Renewed  bool      `json:"renewed"`
	Deadline time.Time `json:"deadline"`
}

// Start grants (or renews) a lease: compute the given cells of sp,
// keeping results fetchable, until done or until ttl elapses without a
// renewal. Re-granting a live lease ID with the same spec and cell count
// is a renewal: the deadline extends and nothing restarts.
func (h *Host) Start(sp Spec, leaseID string, cells []CellRef, ttl time.Duration) (LeaseState, error) {
	sp, err := sp.Normalize()
	if err != nil {
		return LeaseState{}, err
	}
	if leaseID == "" {
		return LeaseState{}, fmt.Errorf("fabric: empty lease id")
	}
	if len(cells) == 0 || len(cells) > h.cfg.MaxCells {
		return LeaseState{}, fmt.Errorf("fabric: lease carries %d cells, want 1..%d", len(cells), h.cfg.MaxCells)
	}
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	specJSON := fmt.Sprintf("%+v|%d", sp, len(cells))

	h.mu.Lock()
	defer h.mu.Unlock()
	h.gcLocked()
	if ex, ok := h.leases[leaseID]; ok {
		if ex.specJSON != specJSON {
			return LeaseState{}, ErrLeaseConflict
		}
		deadline := time.Now().Add(ttl)
		ex.mu.Lock()
		if !ex.done {
			ex.deadline = deadline
			ex.timer.Reset(ttl)
		}
		ex.mu.Unlock()
		h.renewalsTotal.Add(1)
		return LeaseState{LeaseID: leaseID, Total: ex.total, Renewed: true, Deadline: deadline}, nil
	}
	if len(h.leases) >= h.cfg.MaxLeases {
		return LeaseState{}, ErrHostBusy
	}

	ctx, cancel := context.WithCancel(context.Background())
	le := &lease{
		id:       leaseID,
		specJSON: specJSON,
		total:    len(cells),
		cancel:   cancel,
		deadline: time.Now().Add(ttl),
	}
	// The timer enforces the lease: no renewal before the deadline means
	// the coordinator is gone (or revoked us implicitly), so compute
	// stops and the shard becomes re-leasable elsewhere.
	le.timer = time.AfterFunc(ttl, func() {
		h.expiredTotal.Add(1)
		le.fail("lease expired")
		cancel()
	})
	h.leases[leaseID] = le
	h.leasesTotal.Add(1)
	go h.run(ctx, le, sp, cells)
	return LeaseState{LeaseID: leaseID, Total: le.total, Deadline: le.deadline}, nil
}

// run executes the leased cells on the sweep engine, appending each
// payload as it completes (in shard-cell order, thanks to the engine's
// resequencing).
func (h *Host) run(ctx context.Context, le *lease, sp Spec, cells []CellRef) {
	tasks := make([]sweep.Task, len(cells))
	// Annotate each task with its factor class so the engine keeps a
	// shard's contiguous class columns on one worker and the scratch
	// extends them incrementally. Shards batch cells by class in ascending
	// d, so one parse per class run suffices.
	var prevF string
	var cl core.Class
	for i := range cells {
		if cells[i].F != prevF {
			if f, err := bitstr.Parse(cells[i].F); err == nil {
				cl = core.Class{Rep: f}
			} else {
				cl = core.Class{} // ComputeCell reports the parse error per cell
			}
			prevF = cells[i].F
		}
		tasks[i] = sweep.Task{Class: cl, D: cells[i].D}
	}
	delay := h.cfg.CellDelay
	stream := sweep.Stream(ctx, tasks, func(ctx context.Context, s *core.Scratch, t sweep.Task) (any, error) {
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return ComputeCell(ctx, s, sp, cells[t.Seq])
	}, sweep.Options{Workers: h.cfg.Workers, Provider: h.cfg.Provider})
	var failure error
	for r := range stream {
		if r.Err != nil {
			failure = r.Err
			break
		}
		le.mu.Lock()
		le.results = append(le.results, r.Value.([]byte))
		le.mu.Unlock()
		h.cellsTotal.Add(1)
	}
	if failure == nil {
		failure = ctx.Err()
	}
	le.mu.Lock()
	if !le.done {
		le.done = true
		if failure != nil {
			le.errMsg = failure.Error()
		}
		le.gcAt = time.Now().Add(h.cfg.ExpiredGrace)
	}
	le.mu.Unlock()
}

// fail marks the lease finished with an error message (expiry path).
func (le *lease) fail(msg string) {
	le.mu.Lock()
	if !le.done {
		le.done = true
		le.errMsg = msg
	}
	le.gcAt = time.Now().Add(time.Minute)
	le.mu.Unlock()
}

// ReportChunk is one incremental fetch of a lease's completed cells.
type ReportChunk struct {
	LeaseID string `json:"lease"`
	From    int    `json:"from"`
	// Payloads are the completed cell records [From, Next), each a
	// canonical Record encoding.
	Payloads [][]byte `json:"payloads"`
	Next     int      `json:"next"`
	Total    int      `json:"total"`
	Done     bool     `json:"done"`
	// Err is set when the lease stopped early (expiry, cancellation, a
	// failing cell); the payloads shipped remain valid completed cells.
	Err string `json:"error,omitempty"`
}

// Report fetches completed cells from cursor from, at most max (0 = no
// bound) per call.
func (h *Host) Report(leaseID string, from, max int) (ReportChunk, error) {
	h.mu.Lock()
	h.gcLocked()
	le, ok := h.leases[leaseID]
	h.mu.Unlock()
	if !ok {
		return ReportChunk{}, ErrLeaseNotFound
	}
	h.reportsTotal.Add(1)
	le.mu.Lock()
	defer le.mu.Unlock()
	if from < 0 || from > len(le.results) {
		return ReportChunk{}, fmt.Errorf("fabric: report cursor %d out of range [0,%d]", from, len(le.results))
	}
	end := len(le.results)
	if max > 0 && from+max < end {
		end = from + max
	}
	chunk := ReportChunk{
		LeaseID: leaseID,
		From:    from,
		Next:    end,
		Total:   le.total,
		Done:    le.done,
		Err:     le.errMsg,
	}
	chunk.Payloads = append(chunk.Payloads, le.results[from:end]...)
	return chunk, nil
}

// Cancel revokes a lease: compute stops and the lease stays fetchable
// for the grace period (a canceled straggler may still hold results the
// coordinator wants).
func (h *Host) Cancel(leaseID string) error {
	h.mu.Lock()
	le, ok := h.leases[leaseID]
	h.mu.Unlock()
	if !ok {
		return ErrLeaseNotFound
	}
	h.cancelsTotal.Add(1)
	le.timer.Stop()
	le.fail("lease canceled")
	le.cancel()
	return nil
}

// gcLocked drops leases past their garbage-collection time. Callers hold
// h.mu.
func (h *Host) gcLocked() {
	now := time.Now()
	for id, le := range h.leases {
		le.mu.Lock()
		expired := !le.gcAt.IsZero() && now.After(le.gcAt)
		le.mu.Unlock()
		if expired {
			le.timer.Stop()
			le.cancel()
			delete(h.leases, id)
		}
	}
}

// Close cancels every lease (for worker shutdown and tests).
func (h *Host) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for id, le := range h.leases {
		le.timer.Stop()
		le.fail("host closed")
		le.cancel()
		delete(h.leases, id)
	}
}
