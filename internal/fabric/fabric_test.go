package fabric

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// runCoordinator drives a fresh run of sp over the given workers into a
// new ledger at path, returning the derived result set.
func runCoordinator(t *testing.T, sp Spec, path string, workers []Worker, opts Options) []byte {
	t.Helper()
	l, err := CreateLedger(path, sp)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	opts.Workers = workers
	co, err := NewCoordinator(sp, l, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := ResultSet(l.Records())
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestCoordinatorMatchesOracle(t *testing.T) {
	sp := testSpec(t)
	h1 := NewHost(HostConfig{})
	h2 := NewHost(HostConfig{})
	defer h1.Close()
	defer h2.Close()
	workers := []Worker{NewLocalWorker("w1", h1), NewLocalWorker("w2", h2)}
	got := runCoordinator(t, sp, t.TempDir()+"/run.gfcl", workers, Options{Poll: 2 * time.Millisecond})
	want, err := Oracle(context.Background(), sp, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("fabric result set differs from single-process oracle")
	}
}

func TestCoordinatorAllOps(t *testing.T) {
	for _, op := range []Op{OpClassify, OpSurvey, OpDegrees, OpWiener} {
		op := op
		t.Run(string(op), func(t *testing.T) {
			sp, err := Spec{Op: op, MinLen: 2, MaxLen: 3, MinD: 2, MaxD: 5}.Normalize()
			if err != nil {
				t.Fatal(err)
			}
			h := NewHost(HostConfig{Workers: 2})
			defer h.Close()
			got := runCoordinator(t, sp, t.TempDir()+"/run.gfcl", []Worker{NewLocalWorker("w", h)}, Options{Poll: 2 * time.Millisecond})
			want, err := Oracle(context.Background(), sp, 2, nil)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("op %s: fabric differs from oracle", op)
			}
		})
	}
}

func TestCoordinatorInterruptAndResume(t *testing.T) {
	sp := testSpec(t)
	path := t.TempDir() + "/run.gfcl"
	total := len(sp.Cells())

	// First run: cancel via the progress hook once half the grid is in
	// the ledger — the moral equivalent of a SIGKILL mid-sweep.
	l, err := CreateLedger(path, sp)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h1 := NewHost(HostConfig{CellDelay: time.Millisecond})
	co, err := NewCoordinator(sp, l, Options{
		Workers: []Worker{NewLocalWorker("w1", h1)},
		Poll:    2 * time.Millisecond,
		Progress: func(done, _ int) {
			if done >= total/2 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	h1.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	partial := int(co.Counters().CellsDone.Load())
	if partial == 0 || partial >= total {
		t.Fatalf("interrupted run recorded %d/%d cells; test wants a strict partial", partial, total)
	}

	// Second run: reopen the same ledger and sweep to completion.
	l, err = OpenLedger(path, &sp)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := len(l.Records()); got < partial {
		t.Fatalf("reopened ledger holds %d records, coordinator recorded %d", got, partial)
	}
	h2 := NewHost(HostConfig{})
	defer h2.Close()
	co2, err := NewCoordinator(sp, l, Options{Workers: []Worker{NewLocalWorker("w2", h2)}, Poll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if co2.Counters().Resumes.Load() != 1 {
		t.Fatal("second run did not count as a resume")
	}
	if err := co2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := ResultSet(l.Records())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Oracle(context.Background(), sp, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("resumed result set differs from oracle")
	}
	scan, err := VerifyLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Duplicates != 0 {
		t.Fatalf("resumed ledger holds %d duplicate cells", scan.Duplicates)
	}
	if len(scan.Records) != total {
		t.Fatalf("resumed ledger holds %d records, want %d", len(scan.Records), total)
	}
}

func TestCoordinatorStealsFromStragglerWithoutDuplicates(t *testing.T) {
	sp, err := Spec{Op: OpClassify, MinLen: 1, MaxLen: 3, MinD: 1, MaxD: 6}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	// Worker "slow" crawls at 30ms/cell; worker "fast" is unthrottled.
	// Fast drains the pending queue, goes idle, and must steal the tail
	// of slow's lease to finish the grid promptly. Slow still computes
	// (and reports) its full lease — the stolen overlap is exactly what
	// the record-path dedupe exists for.
	slow := NewHost(HostConfig{CellDelay: 30 * time.Millisecond})
	fast := NewHost(HostConfig{Workers: 2})
	defer slow.Close()
	defer fast.Close()
	path := t.TempDir() + "/run.gfcl"
	l, err := CreateLedger(path, sp)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	co, err := NewCoordinator(sp, l, Options{
		Workers:        []Worker{NewLocalWorker("slow", slow), NewLocalWorker("fast", fast)},
		Poll:           2 * time.Millisecond,
		StealThreshold: 2,
		LeaseTTL:       time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if co.Counters().Steals.Load() == 0 {
		t.Fatal("fast worker never stole from the straggler")
	}
	got, err := ResultSet(l.Records())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Oracle(context.Background(), sp, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("stolen run differs from oracle")
	}
	scan, err := VerifyLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Duplicates != 0 {
		t.Fatalf("ledger holds %d duplicate cells despite dedupe", scan.Duplicates)
	}
}

func TestCoordinatorSurvivesLeaseExpiry(t *testing.T) {
	// TTL far below the shard's compute time and a poll far above the
	// renewal cadence force expiries; the coordinator must requeue and
	// still converge to the oracle.
	sp := testSpec(t)
	h := NewHost(HostConfig{CellDelay: 5 * time.Millisecond})
	defer h.Close()
	path := t.TempDir() + "/run.gfcl"
	l, err := CreateLedger(path, sp)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	co, err := NewCoordinator(sp, l, Options{
		Workers:  []Worker{NewLocalWorker("w", h)},
		LeaseTTL: 40 * time.Millisecond,
		Poll:     10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := ResultSet(l.Records())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Oracle(context.Background(), sp, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("run with expiring leases differs from oracle")
	}
}

func TestHostLeaseLifecycle(t *testing.T) {
	sp := testSpec(t)
	cells := sp.Cells()
	h := NewHost(HostConfig{})
	defer h.Close()

	state, err := h.Start(sp, "L1", cells, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if state.Renewed || state.Total != len(cells) {
		t.Fatalf("grant: %+v", state)
	}
	// Idempotent re-grant is a renewal.
	state, err = h.Start(sp, "L1", cells, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !state.Renewed {
		t.Fatal("re-grant of a live lease was not a renewal")
	}
	// Same ID, different cell set: conflict.
	if _, err := h.Start(sp, "L1", cells[:1], time.Minute); !errors.Is(err, ErrLeaseConflict) {
		t.Fatalf("conflicting re-grant: err = %v, want ErrLeaseConflict", err)
	}

	// Drain reports by cursor until done.
	var payloads [][]byte
	from := 0
	deadline := time.Now().Add(10 * time.Second)
	for {
		chunk, err := h.Report("L1", from, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(chunk.Payloads) > 3 {
			t.Fatalf("report ignored max: %d payloads", len(chunk.Payloads))
		}
		payloads = append(payloads, chunk.Payloads...)
		from = chunk.Next
		if chunk.Done && len(chunk.Payloads) == 0 {
			if chunk.Err != "" {
				t.Fatalf("lease failed: %s", chunk.Err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never completed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if len(payloads) != len(cells) {
		t.Fatalf("drained %d payloads, want %d", len(payloads), len(cells))
	}
	// Payloads arrive in shard-cell order.
	for i, p := range payloads {
		rec, err := decodeRecord(p)
		if err != nil {
			t.Fatal(err)
		}
		if rec.I != cells[i].I {
			t.Fatalf("payload %d is cell %d, want %d", i, rec.I, cells[i].I)
		}
	}

	if _, err := h.Report("nope", 0, 0); !errors.Is(err, ErrLeaseNotFound) {
		t.Fatalf("unknown lease: err = %v, want ErrLeaseNotFound", err)
	}
	if _, err := h.Report("L1", 10_000, 0); err == nil {
		t.Fatal("out-of-range cursor accepted")
	}
	if err := h.Cancel("L1"); err != nil {
		t.Fatal(err)
	}
	if err := h.Cancel("nope"); !errors.Is(err, ErrLeaseNotFound) {
		t.Fatalf("cancel unknown: err = %v, want ErrLeaseNotFound", err)
	}
	st := h.Stats()
	if st.Leases != 1 || st.Renewals != 1 || st.Cancels != 1 || st.Cells != uint64(len(cells)) {
		t.Fatalf("stats: %+v", st)
	}
}

func TestHostLeaseExpires(t *testing.T) {
	sp := testSpec(t)
	cells := sp.Cells()
	h := NewHost(HostConfig{CellDelay: 10 * time.Millisecond})
	defer h.Close()
	if _, err := h.Start(sp, "L1", cells, 25*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		chunk, err := h.Report("L1", 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if chunk.Done && chunk.Err != "" {
			if !strings.Contains(chunk.Err, "expired") && !strings.Contains(chunk.Err, "cancel") {
				t.Fatalf("unexpected failure message: %s", chunk.Err)
			}
			if h.Stats().Expired == 0 {
				t.Fatal("expiry not counted")
			}
			return
		}
		if chunk.Done {
			t.Fatal("lease completed despite a TTL shorter than one cell")
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHostLeaseCapacity(t *testing.T) {
	sp := testSpec(t)
	cells := sp.Cells()
	h := NewHost(HostConfig{MaxLeases: 1, CellDelay: 10 * time.Millisecond})
	defer h.Close()
	if _, err := h.Start(sp, "L1", cells, time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Start(sp, "L2", cells, time.Minute); !errors.Is(err, ErrHostBusy) {
		t.Fatalf("over-capacity grant: err = %v, want ErrHostBusy", err)
	}
}
