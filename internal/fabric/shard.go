package fabric

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"gfcube/internal/bitstr"
	"gfcube/internal/core"
	"gfcube/internal/iso"
)

// Shard is one leasable unit of grid work: a subset of the spec's cells.
// Primary shards group whole factor classes (every cell of a class lands
// in its class's shard); shards minted by work stealing carry whatever
// tail of a straggler was split off.
type Shard struct {
	ID    string
	Cells []CellRef
	// Stolen marks shards minted by splitting a straggler.
	Stolen bool
}

// classShard maps a canonical class representative to its shard slot in
// [0, n) by rendezvous (highest-random-weight) hashing: for each slot,
// score = SHA-256(slot || class) and the class goes to the best-scoring
// slot. The assignment depends only on (class, n), so for a fixed shard
// count the same class always lands on the same shard — across runs,
// resumes and worker reconfigurations.
func classShard(rep string, n int) int {
	if n <= 1 {
		return 0
	}
	best, bestSlot := "", 0
	for slot := 0; slot < n; slot++ {
		var key [8]byte
		binary.LittleEndian.PutUint64(key[:], uint64(slot))
		sum := sha256.Sum256(append(key[:], rep...))
		score := string(sum[:])
		if slot == 0 || score > best {
			best, bestSlot = score, slot
		}
	}
	return bestSlot
}

// Partition splits cells into at most n class-affine shards. Cells of
// one class are never split across primary shards, shards preserve grid
// order internally, and empty slots are dropped. Shard IDs are stable
// ("s<slot>") so lease names and logs are comparable across runs.
func Partition(cells []CellRef, n int) []*Shard {
	if n < 1 {
		n = 1
	}
	slots := make(map[int][]CellRef)
	for _, c := range cells {
		slot := classShard(c.F, n)
		slots[slot] = append(slots[slot], c)
	}
	ids := make([]int, 0, len(slots))
	for slot := range slots {
		ids = append(ids, slot)
	}
	sort.Ints(ids)
	out := make([]*Shard, 0, len(ids))
	for _, slot := range ids {
		out = append(out, &Shard{ID: fmt.Sprintf("s%d", slot), Cells: slots[slot]})
	}
	return out
}

// PartitionIso is Partition with iso-class affinity: classes that are
// Hamming-congruent at every dimension of [minD, maxD] hash to the shard
// slot of their congruence-group leader, so congruent columns land on the
// same worker and its scratch revisits near-identical cubes back to back.
// This is pure scheduling — every cell is still computed by ComputeCell
// and recorded by grid index, so the result set is byte-identical to a
// plain Partition run. Like classShard, the assignment depends only on
// (leader, n, band), so affinity is stable across runs and resumes.
func PartitionIso(cells []CellRef, n, minD, maxD int) []*Shard {
	if n < 1 {
		n = 1
	}
	// Cells arrive in grid order, so first occurrence enumerates the
	// distinct classes in the deterministic order iso.Band expects.
	var classes []core.Class
	seen := make(map[string]bool)
	for _, c := range cells {
		if !seen[c.F] {
			seen[c.F] = true
			if f, err := bitstr.Parse(c.F); err == nil {
				classes = append(classes, core.ClassOf(f))
			}
		}
	}
	part := iso.Band(minD, maxD, classes)
	slots := make(map[int][]CellRef)
	for _, c := range cells {
		rep := c.F
		if f, err := bitstr.Parse(c.F); err == nil {
			rep = part.Leader(f).String()
		}
		slot := classShard(rep, n)
		slots[slot] = append(slots[slot], c)
	}
	ids := make([]int, 0, len(slots))
	for slot := range slots {
		ids = append(ids, slot)
	}
	sort.Ints(ids)
	out := make([]*Shard, 0, len(ids))
	for _, slot := range ids {
		out = append(out, &Shard{ID: fmt.Sprintf("s%d", slot), Cells: slots[slot]})
	}
	return out
}
