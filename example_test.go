package gfcube_test

import (
	"fmt"

	"gfcube"
)

// Build the cube of the paper's Figure 1 and inspect it.
func ExampleNew() {
	cube := gfcube.New(4, gfcube.MustWord("101"))
	fmt.Println(cube.N(), "vertices,", cube.M(), "edges")
	fmt.Println("contains 1010:", cube.Contains(gfcube.MustWord("1010")))
	fmt.Println("contains 1001:", cube.Contains(gfcube.MustWord("1001")))
	// Output:
	// 12 vertices, 18 edges
	// contains 1010: false
	// contains 1001: true
}

// The Fibonacci cube is the special case f = 11.
func ExampleFibonacciCube() {
	for d := 1; d <= 6; d++ {
		fmt.Print(gfcube.FibonacciCube(d).N(), " ")
	}
	fmt.Println()
	// Output:
	// 2 3 5 8 13 21
}

// Decide isometric embeddability, with a witness on failure. The serial
// checker reports the deterministic first witness.
func ExampleIsIsometric() {
	res := gfcube.New(4, gfcube.MustWord("101")).IsIsometricSerial()
	fmt.Println("isometric:", res.Isometric)
	fmt.Printf("witness: %s -- %s (cube %d, Hamming %d)\n", res.U, res.V, res.CubeDist, res.HammingDist)
	// Output:
	// isometric: false
	// witness: 1001 -- 1111 (cube 4, Hamming 2)
}

// The paper's classification theory, with citations.
func ExampleClassify() {
	fmt.Println(gfcube.Classify(gfcube.MustWord("11"), 100).Reason)
	fmt.Println(gfcube.Classify(gfcube.MustWord("1100"), 7).Reason)
	// Output:
	// Proposition 3.1 (f = 1^s)
	// Theorem 3.3(ii) (f = 1^2 0^s, d > s+4)
}

// Exact counting far beyond explicit construction.
func ExampleCount() {
	c := gfcube.Count(40, gfcube.MustWord("110"))
	fmt.Println(c.V)
	fmt.Println(c.E)
	// Output:
	// 433494436
	// 4978643595
}

// Zeckendorf-style addressing: rank/unrank without construction.
func ExampleNewRanker() {
	r := gfcube.NewRanker(gfcube.Ones(2), 10)
	w, _ := r.UnrankInt(88)
	fmt.Println(w)
	rank, _ := r.Rank(w)
	fmt.Println(rank)
	// Output:
	// 0101010101
	// 88
}

// Distributed routing with purely local decisions.
func ExampleNewWordRouter() {
	router := gfcube.NewWordRouter(gfcube.Ones(2))
	src := gfcube.MustWord("101010")
	dst := gfcube.MustWord("010101")
	path, ok := router.Route(src, dst, 0)
	fmt.Println(ok, len(path)-1, "hops")
	// Output:
	// true 6 hops
}

// Lucas cubes: the cyclic sibling family.
func ExampleNewLucasCube() {
	for d := 1; d <= 6; d++ {
		fmt.Print(gfcube.NewLucasCube(d).N(), " ")
	}
	fmt.Println()
	// Output:
	// 1 3 4 7 11 18
}

// Generalized Lucas cubes avoid an arbitrary factor circularly.
func ExampleNewGeneralLucasCube() {
	l := gfcube.NewGeneralLucasCube(5, gfcube.MustWord("110"))
	q := gfcube.New(5, gfcube.MustWord("110"))
	fmt.Println(l.N(), "of", q.N(), "linear-avoiding words survive the circular condition")
	// Output:
	// 12 of 20 linear-avoiding words survive the circular condition
}

// Isometric dimension and f-dimension of a guest graph (Section 7).
func ExampleFDim() {
	g := gfcube.CycleGraph(4)
	fmt.Println("idim:", gfcube.Idim(g))
	res := gfcube.FDim(g, gfcube.Ones(2), 5)
	fmt.Println("dim_11:", res.Dim)
	// Output:
	// idim: 2
	// dim_11: 3
}
